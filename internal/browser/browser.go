// Package browser simulates the browsers of §7.1: a cookie jar, referer
// emission, subresource fetching, and per-profile privacy policy —
// vanilla Chrome/Opera, Safari's ITP (third-party cookie blocking),
// Firefox's ETP (third-party cookie blocking for known trackers), and
// Brave's Shields (request blocking with CNAME uncloaking).
//
// The engine renders a site page by issuing the document request, a
// first-party asset, and each embedded tag's resource request; the
// crawler drives authentication events that make tags emit leak
// requests. Everything the browser lets through is appended to Records —
// the dataset §4's detection pipeline runs on.
package browser

import (
	"context"
	"net/url"
	"sort"
	"strings"

	"piileak/internal/dnssim"
	"piileak/internal/httpmodel"
	"piileak/internal/obs"
	"piileak/internal/pii"
	"piileak/internal/psl"
	"piileak/internal/site"
)

// Profile is a browser's privacy configuration.
type Profile struct {
	// Name and Version identify the browser (reporting only).
	Name    string
	Version string
	// BlockThirdPartyCookies stops cookies on cross-site requests
	// (Safari ITP; Brave).
	BlockThirdPartyCookies bool
	// ETPTrackerCookies stops cookies on cross-site requests to known
	// trackers only (Firefox ETP).
	ETPTrackerCookies bool
	// Shields holds registrable domains whose requests are blocked
	// outright (Brave). nil means no request blocking.
	Shields map[string]bool
	// UncloakCNAME applies Shields to the CNAME-resolved effective
	// party, not just the literal request host (Brave ≥ 1.25).
	UncloakCNAME bool
	// KnownTrackers backs ETPTrackerCookies.
	KnownTrackers map[string]bool
}

// Chrome93 returns the vanilla Chrome profile of §7.1.
func Chrome93() Profile { return Profile{Name: "Chrome", Version: "93"} }

// Opera79 returns the vanilla Opera profile.
func Opera79() Profile { return Profile{Name: "Opera", Version: "79.0"} }

// Safari14 returns Safari with ITP (default-on).
func Safari14() Profile {
	return Profile{Name: "Safari", Version: "14.03", BlockThirdPartyCookies: true}
}

// Firefox88 returns the study's vanilla collection profile (ETP off).
func Firefox88() Profile { return Profile{Name: "Firefox", Version: "88"} }

// Firefox88ETP returns Firefox with Enhanced Tracking Protection,
// restricting cookies for the given known-tracker domains.
func Firefox88ETP(knownTrackers map[string]bool) Profile {
	return Profile{
		Name: "Firefox", Version: "88+ETP",
		ETPTrackerCookies: true,
		KnownTrackers:     knownTrackers,
	}
}

// Brave129 returns Brave with Shields blocking the given registrable
// domains, including over CNAME cloaking.
func Brave129(shields map[string]bool) Profile {
	return Profile{
		Name: "Brave", Version: "1.29.81",
		BlockThirdPartyCookies: true,
		Shields:                shields,
		UncloakCNAME:           true,
	}
}

// Transport models the network path of a fetch. A nil Transport (the
// default) always succeeds instantly — the fault-free simulation. The
// crawler installs a resilient transport (retry + backoff + circuit
// breaker over injected faults); an error from Fetch means the request
// definitively failed after whatever retrying the transport did.
type Transport interface {
	Fetch(host string) error
}

// Browser is one browsing session: a profile plus cookie jar and the
// captured traffic.
type Browser struct {
	Profile    Profile
	Classifier *dnssim.Classifier

	// Ctx, when non-nil, cancels the fetch loop: once it is done every
	// request fails as an undelivered fetch, so a cancelled crawl's
	// flow degrades and finishes instead of issuing further traffic.
	// Reset does not clear it — cancellation outlives sessions.
	Ctx context.Context

	// Transport, when non-nil, gates every request on a (possibly
	// faulty) network path.
	Transport Transport

	// Obs, when non-nil, counts issued/blocked/failed requests. Like
	// Ctx, Reset does not clear it — the observer outlives sessions.
	Obs *obs.Run

	// Records is the captured traffic, in request order.
	Records []httpmodel.Record
	// Blocked counts requests the profile blocked, by receiver
	// registrable domain.
	Blocked map[string]int
	// FailedFetches counts requests the transport failed to deliver
	// (after its internal retrying); those exchanges are not recorded.
	FailedFetches int

	jar map[string][]httpmodel.Cookie // cookie domain -> cookies
	seq int
}

// New creates a browsing session. zone supplies CNAME records for
// uncloaking; it may be nil when no cloaked tags exist.
func New(profile Profile, zone *dnssim.Zone) *Browser {
	if zone == nil {
		zone = dnssim.NewZone()
	}
	return &Browser{
		Profile:    profile,
		Classifier: dnssim.NewClassifier(zone),
		Blocked:    map[string]int{},
		jar:        map[string][]httpmodel.Cookie{},
	}
}

// Reset clears cookies, captured traffic and the transport (a fresh
// session on a fresh connection).
func (b *Browser) Reset() {
	b.Records = nil
	b.Blocked = map[string]int{}
	b.FailedFetches = 0
	b.Transport = nil
	b.jar = map[string][]httpmodel.Cookie{}
	b.seq = 0
}

// SetCookie stores a cookie in the jar.
func (b *Browser) SetCookie(c httpmodel.Cookie) {
	d := psl.Normalize(c.Domain)
	for i, old := range b.jar[d] {
		if old.Name == c.Name {
			b.jar[d][i] = c
			return
		}
	}
	b.jar[d] = append(b.jar[d], c)
}

// cookiesFor returns the cookies the profile allows on a request to host
// from a page on pageHost.
func (b *Browser) cookiesFor(host, pageHost string) []httpmodel.Cookie {
	var out []httpmodel.Cookie
	thirdParty := b.Classifier.PSL.IsThirdParty(pageHost, host)
	if thirdParty {
		if b.Profile.BlockThirdPartyCookies {
			return nil
		}
		if b.Profile.ETPTrackerCookies {
			if e, err := b.Classifier.PSL.ETLDPlusOne(host); err == nil && b.Profile.KnownTrackers[e] {
				return nil
			}
		}
	}
	// Match domains first and walk them sorted: the jar is a map, and
	// when several domains cover the host the emitted cookie order
	// must not follow randomized map iteration.
	var domains []string
	for domain := range b.jar {
		if host == domain || strings.HasSuffix(host, "."+domain) {
			domains = append(domains, domain)
		}
	}
	sort.Strings(domains)
	for _, domain := range domains {
		out = append(out, b.jar[domain]...)
	}
	return out
}

// allowed applies Shields: false means the request is blocked. The
// receiver is the registrable domain charged for the block.
func (b *Browser) allowed(reqHost string) (receiver string, ok bool) {
	if b.Profile.Shields == nil {
		return "", true
	}
	party := reqHost
	if b.Profile.UncloakCNAME {
		party = b.Classifier.EffectiveParty(reqHost)
	} else if e, err := b.Classifier.PSL.ETLDPlusOne(reqHost); err == nil {
		party = e
	}
	if b.Profile.Shields[party] {
		return party, false
	}
	return "", true
}

// Do issues one request: applies shields and cookie policy, attaches the
// referer, records the exchange, and returns whether it went through.
func (b *Browser) Do(req httpmodel.Request, page string, phase httpmodel.Phase, referer string, resp httpmodel.Response) bool {
	host := req.Host()
	if receiver, ok := b.allowed(host); !ok {
		b.Blocked[receiver]++
		b.Obs.Count(obs.MetricBrowserBlocked, 1)
		return false
	}
	if b.Ctx != nil && b.Ctx.Err() != nil {
		// The run is cancelled: the request never leaves the browser.
		// It counts as a failed fetch, but the crawl engine discards
		// the in-flight site's entry anyway.
		b.FailedFetches++
		b.Obs.Count(obs.MetricFetchFailures, 1)
		return false
	}
	if b.Transport != nil {
		if err := b.Transport.Fetch(host); err != nil {
			b.FailedFetches++
			b.Obs.Count(obs.MetricFetchFailures, 1)
			return false
		}
	}
	pageHost := hostOf(page)
	if referer != "" {
		if req.Headers == nil {
			req.Headers = map[string]string{}
		}
		req.Headers["Referer"] = referer
	}
	req.Cookies = b.cookiesFor(host, pageHost)

	if resp.Status == 0 {
		resp.Status = 200
	}
	for _, c := range resp.SetCookies {
		if b.canSetCookie(c, pageHost) {
			b.SetCookie(c)
		}
	}

	b.seq++
	b.Obs.Count(obs.MetricBrowserRequests, 1)
	b.Records = append(b.Records, httpmodel.Record{
		Seq:      b.seq,
		Page:     page,
		Phase:    phase,
		Request:  req,
		Response: resp,
	})
	return true
}

func (b *Browser) canSetCookie(c httpmodel.Cookie, pageHost string) bool {
	thirdParty := b.Classifier.PSL.IsThirdParty(pageHost, c.Domain)
	if !thirdParty {
		return true
	}
	if b.Profile.BlockThirdPartyCookies {
		return false
	}
	if b.Profile.ETPTrackerCookies {
		if e, err := b.Classifier.PSL.ETLDPlusOne(c.Domain); err == nil && b.Profile.KnownTrackers[e] {
			return false
		}
	}
	return true
}

func hostOf(pageURL string) string {
	u, err := url.Parse(pageURL)
	if err != nil {
		return ""
	}
	return strings.ToLower(u.Hostname())
}

// refererFrom computes the Referer value a subresource request gets
// from its page: the full URL when the page is same-origin with the
// target or the site opted into unsafe-url (the GET-form sites), the
// origin otherwise — Firefox 88's default policy.
func refererFrom(s *site.Site, pageURL, targetHost string) string {
	pageHost := hostOf(pageURL)
	sameSite := !psl.IsThirdParty(pageHost, targetHost)
	if sameSite || s.SignupGET {
		// Badly-coded GET-form sites also ship
		// `Referrer-Policy: unsafe-url`, which is what makes their
		// accidental leak observable cross-origin (§4.1).
		return pageURL
	}
	u, err := url.Parse(pageURL)
	if err != nil {
		return ""
	}
	return u.Scheme + "://" + u.Host + "/"
}

// VisitPage renders a page: the document request, one first-party asset,
// and every embedded tag's resource load. subpage selects the §5.2
// persistence context (only OnSubpages tags load). It reports whether
// the document itself arrived; when it did not (a transport failure),
// no subresources load and the caller's flow is broken at this step.
func (b *Browser) VisitPage(s *site.Site, pageURL string, phase httpmodel.Phase, subpage bool) bool {
	if !b.Do(httpmodel.Request{
		Method: "GET", URL: pageURL, Type: httpmodel.TypeDocument,
	}, pageURL, phase, "", httpmodel.Response{}) {
		return false
	}
	b.RenderSubresources(s, pageURL, phase, subpage)
	return true
}

// RenderSubresources loads a page's asset and tags without re-issuing
// the document request — used after form submissions, where the
// navigation request already happened.
func (b *Browser) RenderSubresources(s *site.Site, pageURL string, phase httpmodel.Phase, subpage bool) {
	asset := s.PageURL("/static/app.js")
	b.Do(httpmodel.Request{
		Method: "GET", URL: asset, Type: httpmodel.TypeScript, Initiator: pageURL,
	}, pageURL, phase, refererFrom(s, pageURL, s.Host()), httpmodel.Response{})

	for _, tag := range s.TagsOn(subpage) {
		req := tag.LoadRequest(pageURL)
		b.Do(req, pageURL, phase, refererFrom(s, pageURL, req.Host()), httpmodel.Response{})
	}
}

// FireAuthEvent makes every action-bearing tag on the page emit its leak
// requests for an authentication event. Cookie-channel actions set their
// identifying cookie first, then issue the tag's beacon so the cookie
// travels. times > 1 repeats the emission (subpage view + interaction).
func (b *Browser) FireAuthEvent(s *site.Site, pageURL string, phase httpmodel.Phase, subpage bool, p pii.Persona, times int) {
	if times < 1 {
		times = 1
	}
	for _, tag := range s.TagsOn(subpage) {
		if len(tag.Actions) == 0 {
			continue
		}
		for rep := 0; rep < times; rep++ {
			for _, action := range tag.Actions {
				req, cookies := tag.LeakRequest(action, pageURL, p)
				for _, c := range cookies {
					// Identifying cookies are minted by script on
					// the (cloaked, first-party) tag host.
					b.SetCookie(c)
				}
				b.Do(req, pageURL, phase, refererFrom(s, pageURL, req.Host()), httpmodel.Response{})
			}
		}
	}
}

// SubmitForm issues the signup/signin form submission as a top-level
// navigation. It reports whether the submission reached the server —
// false means the transport failed the navigation after retrying.
func (b *Browser) SubmitForm(s *site.Site, action string, fields []site.FormField, phase httpmodel.Phase, fromPage string) bool {
	u, err := url.Parse(action)
	if err != nil {
		return false
	}
	req := httpmodel.Request{Method: "POST", URL: action, Type: httpmodel.TypeDocument, Initiator: fromPage}
	if u.RawQuery != "" {
		// A GET form: fields ride in the URL.
		req.Method = "GET"
	} else {
		vals := url.Values{}
		for _, f := range fields {
			vals.Set(f.Name, f.Value)
		}
		req.Body = []byte(vals.Encode())
		req.BodyType = "application/x-www-form-urlencoded"
	}
	resp := httpmodel.Response{
		Status: 302,
		SetCookies: []httpmodel.Cookie{{
			Name: "session", Value: "sess-" + s.Domain, Domain: s.Host(),
		}},
	}
	return b.Do(req, action, phase, fromPage, resp)
}
