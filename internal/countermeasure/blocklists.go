package countermeasure

import (
	"sort"

	"piileak/internal/blocklist"
	"piileak/internal/core"
	"piileak/internal/crawler"
	"piileak/internal/httpmodel"
	"piileak/internal/psl"
)

// Cell is one Table 4 entry: how many of a per-method population a
// filter configuration covers.
type Cell struct {
	Count int
	Total int
}

// Pct renders the coverage percentage.
func (c Cell) Pct() float64 {
	if c.Total == 0 {
		return 0
	}
	return 100 * float64(c.Count) / float64(c.Total)
}

// Table4Row is one (metric, method) row with the three list
// configurations.
type Table4Row struct {
	Metric                          string // "senders" or "receivers"
	Method                          string // Table 1a vocabulary, plus "combined" and "total"
	EasyList, EasyPrivacy, Combined Cell
}

// Table4 is the §7.2 result.
type Table4 struct {
	Rows []Table4Row
	// MissedTrackers lists Table 2 tracking providers the combined
	// lists fail to cover (the paper's custora/taboola/zendesk).
	MissedTrackers []string
}

// ListSet bundles the parsed filter lists.
type ListSet struct {
	EasyList    *blocklist.List
	EasyPrivacy *blocklist.List
}

// ParseLists compiles the two list texts.
func ParseLists(easyListText, easyPrivacyText string) (ListSet, error) {
	el, err := blocklist.ParseList("easylist", easyListText)
	if err != nil {
		return ListSet{}, err
	}
	ep, err := blocklist.ParseList("easyprivacy", easyPrivacyText)
	if err != nil {
		return ListSet{}, err
	}
	return ListSet{EasyList: el, EasyPrivacy: ep}, nil
}

// leakBlocked reports whether a leak would have been prevented by the
// engine: the leaky request itself, or any request in its initiator
// chain (the tag scripts that caused it), matches a block rule (§7.2's
// methodology).
func leakBlocked(engine *blocklist.Engine, l *core.Leak, chain []httpmodel.Request, pslList *psl.List, siteHost string) bool {
	reqs := append([]httpmodel.Request{{URL: l.RequestURL, Type: httpmodel.TypeOther}}, chain...)
	for i := range reqs {
		r := &reqs[i]
		typ := r.Type
		if typ == "" {
			typ = httpmodel.TypeOther
		}
		ri := blocklist.RequestInfo{
			URL:        r.URL,
			PageHost:   siteHost,
			Type:       typ,
			ThirdParty: pslList.IsThirdParty(siteHost, hostOf(r.URL)),
		}
		if engine.ShouldBlock(ri) {
			return true
		}
	}
	return false
}

func hostOf(rawURL string) string {
	r := httpmodel.Request{URL: rawURL}
	return r.Host()
}

// EvaluateBlocklists reproduces Table 4 from a full crawl dataset: it
// reduces the captures to a request index and delegates to the indexed
// evaluation.
func EvaluateBlocklists(leaks []core.Leak, ds *crawler.Dataset, lists ListSet, trackers []string) *Table4 {
	ix := httpmodel.NewRequestIndex()
	for i := range ds.Crawls {
		ix.AddSite(ds.Crawls[i].Domain, ds.Crawls[i].Records)
	}
	return EvaluateBlocklistsIndexed(leaks, ix, lists, trackers)
}

// EvaluateBlocklistsIndexed reproduces Table 4 over a reduced request
// index: for each (metric, method) cell it counts the senders
// (receivers) whose every leak through that channel would have been
// blocked by EasyList alone, EasyPrivacy alone, and both combined. The
// streaming pipeline calls this form — it retains only the reduced
// index, never the full captures.
func EvaluateBlocklistsIndexed(leaks []core.Leak, ix *httpmodel.RequestIndex, lists ListSet, trackers []string) *Table4 {
	pslList := psl.Default()
	engines := map[string]*blocklist.Engine{
		"el":       blocklist.NewEngine(lists.EasyList),
		"ep":       blocklist.NewEngine(lists.EasyPrivacy),
		"combined": blocklist.NewEngine(lists.EasyList, lists.EasyPrivacy),
	}

	// Per leak, per engine: blocked?
	type leakVerdict struct {
		leak    *core.Leak
		blocked map[string]bool
	}
	verdicts := make([]leakVerdict, 0, len(leaks))
	for i := range leaks {
		l := &leaks[i]
		chain := ix.Chain(l.Site, l.Seq)
		v := leakVerdict{leak: l, blocked: map[string]bool{}}
		for name, eng := range engines {
			v.blocked[name] = leakBlocked(eng, l, chain, pslList, "www."+l.Site)
		}
		verdicts = append(verdicts, v)
	}

	// For each method: population and covered sets per engine, with
	// "covered" meaning every leak of that entity through the method is
	// blocked.
	methods := append([]httpmodel.SurfaceKind{}, httpmodel.AllSurfaceKinds...)
	labels := map[httpmodel.SurfaceKind]string{
		httpmodel.SurfaceReferer: "referer",
		httpmodel.SurfaceURI:     "uri",
		httpmodel.SurfaceBody:    "payload",
		httpmodel.SurfaceCookie:  "cookie",
	}

	t := &Table4{}
	for _, metric := range []string{"senders", "receivers"} {
		entityOf := func(l *core.Leak) string {
			if metric == "senders" {
				return l.Site
			}
			return l.Receiver
		}
		// entityMethodLeaks[entity][method] -> verdicts
		eml := map[string]map[httpmodel.SurfaceKind][]*leakVerdict{}
		for i := range verdicts {
			v := &verdicts[i]
			e := entityOf(v.leak)
			if eml[e] == nil {
				eml[e] = map[httpmodel.SurfaceKind][]*leakVerdict{}
			}
			eml[e][v.leak.Method] = append(eml[e][v.leak.Method], v)
		}

		coveredFor := func(vs []*leakVerdict, engine string) bool {
			for _, v := range vs {
				if !v.blocked[engine] {
					return false
				}
			}
			return len(vs) > 0
		}

		for _, m := range methods {
			row := Table4Row{Metric: metric, Method: labels[m]}
			for e, perMethod := range eml {
				vs, ok := perMethod[m]
				if !ok {
					continue
				}
				_ = e
				row.EasyList.Total++
				row.EasyPrivacy.Total++
				row.Combined.Total++
				if coveredFor(vs, "el") {
					row.EasyList.Count++
				}
				if coveredFor(vs, "ep") {
					row.EasyPrivacy.Count++
				}
				if coveredFor(vs, "combined") {
					row.Combined.Count++
				}
			}
			t.Rows = append(t.Rows, row)
		}

		// Combined-method row: entities using >= 2 channels.
		rowC := Table4Row{Metric: metric, Method: "combined"}
		rowT := Table4Row{Metric: metric, Method: "total"}
		for _, perMethod := range eml {
			var all []*leakVerdict
			for _, vs := range perMethod {
				all = append(all, vs...) //lint:allow maporder coveredFor is an order-insensitive all-blocked predicate over the set
			}
			addTo := func(row *Table4Row) {
				row.EasyList.Total++
				row.EasyPrivacy.Total++
				row.Combined.Total++
				if coveredFor(all, "el") {
					row.EasyList.Count++
				}
				if coveredFor(all, "ep") {
					row.EasyPrivacy.Count++
				}
				if coveredFor(all, "combined") {
					row.Combined.Count++
				}
			}
			if len(perMethod) >= 2 {
				addTo(&rowC)
			}
			addTo(&rowT)
		}
		t.Rows = append(t.Rows, rowC, rowT)
	}

	// Which Table 2 tracking providers escape the combined lists?
	blockedReceivers := map[string]bool{}
	escaped := map[string]bool{}
	for i := range verdicts {
		v := &verdicts[i]
		if v.blocked["combined"] {
			blockedReceivers[v.leak.Receiver] = true
		} else {
			escaped[v.leak.Receiver] = true
		}
	}
	for _, tr := range trackers {
		if escaped[tr] {
			t.MissedTrackers = append(t.MissedTrackers, tr)
		}
	}
	sort.Strings(t.MissedTrackers)
	return t
}
