// Package countermeasure implements §7: the browser evaluation (re-crawl
// the sender sites under each browser profile and measure surviving
// leakage) and the blocklist evaluation (match the leaky requests and
// their initiator chains against EasyList/EasyPrivacy, Table 4).
package countermeasure

import (
	"sort"

	"piileak/internal/browser"
	"piileak/internal/crawler"
	"piileak/internal/detect"
	"piileak/internal/dnssim"
	"piileak/internal/webgen"
)

// BrowserResult is one §7.1 evaluation row.
type BrowserResult struct {
	Browser string
	// Senders and Receivers count the leak populations surviving under
	// this profile.
	Senders   int
	Receivers int
	// SenderReductionPct / ReceiverReductionPct are relative to the
	// baseline profile.
	SenderReductionPct   float64
	ReceiverReductionPct float64
	// SignupFailures counts sites whose auth flow broke under the
	// profile (Brave's CAPTCHA case).
	SignupFailures int
	// MissedReceivers lists receivers still leaked to despite the
	// profile's protections (only meaningful for blocking profiles).
	MissedReceivers []string
}

// Profiles returns the §7.1 browser set for an ecosystem: the four
// vanilla browsers, Firefox with ETP, and Brave with the shields list.
func Profiles(eco *webgen.Ecosystem) []browser.Profile {
	return []browser.Profile{
		browser.Chrome93(),
		browser.Opera79(),
		browser.Safari14(),
		browser.Firefox88ETP(eco.BraveShields), // ETP uses the same tracker list
		browser.Brave129(eco.BraveShields),
	}
}

// EvaluateBrowsers re-crawls the sender sites under the baseline and
// each profile, runs detection, and reports surviving leakage. The
// detection engine comes from the shared build cache (depth-2
// candidates, matching the main study), so repeated evaluations — and
// evaluations alongside a study of the same persona — compile the
// candidate set once per process.
func EvaluateBrowsers(eco *webgen.Ecosystem, baseline browser.Profile, profiles []browser.Profile) []BrowserResult {
	det := detect.MustNewEngine(eco.Persona, dnssim.NewClassifier(eco.Zone), detect.Config{})

	run := func(p browser.Profile) (senders, receivers map[string]bool, failures int) {
		ds := crawler.CrawlSenders(eco, p)
		senders, receivers = map[string]bool{}, map[string]bool{}
		for _, c := range ds.Crawls {
			if c.Outcome == crawler.OutcomeCaptcha {
				failures++
			}
			for _, l := range det.DetectSite(c.Domain, c.Records) {
				senders[l.Site] = true
				receivers[l.Receiver] = true
			}
		}
		return senders, receivers, failures
	}

	baseSenders, baseReceivers, _ := run(baseline)

	results := []BrowserResult{{
		Browser:   baseline.Name + " " + baseline.Version,
		Senders:   len(baseSenders),
		Receivers: len(baseReceivers),
	}}
	for _, p := range profiles {
		s, r, failures := run(p)
		res := BrowserResult{
			Browser:        p.Name + " " + p.Version,
			Senders:        len(s),
			Receivers:      len(r),
			SignupFailures: failures,
		}
		if len(baseSenders) > 0 {
			res.SenderReductionPct = 100 * float64(len(baseSenders)-len(s)) / float64(len(baseSenders))
		}
		if len(baseReceivers) > 0 {
			res.ReceiverReductionPct = 100 * float64(len(baseReceivers)-len(r)) / float64(len(baseReceivers))
		}
		if p.Shields != nil {
			for recv := range r {
				res.MissedReceivers = append(res.MissedReceivers, recv)
			}
			sort.Strings(res.MissedReceivers)
		}
		results = append(results, res)
	}
	return results
}
