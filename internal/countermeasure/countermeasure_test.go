package countermeasure

import (
	"testing"

	"piileak/internal/browser"
	"piileak/internal/core"
	"piileak/internal/crawler"
	"piileak/internal/dnssim"
	"piileak/internal/httpmodel"
	"piileak/internal/pii"
	"piileak/internal/webgen"
)

func smallStudy(t *testing.T) (*webgen.Ecosystem, *crawler.Dataset, []core.Leak) {
	t.Helper()
	eco := webgen.MustGenerate(webgen.SmallConfig(51))
	ds := crawler.Crawl(eco, browser.Firefox88())
	cs := pii.MustBuildCandidates(eco.Persona, pii.CandidateConfig{MaxDepth: 2})
	det := core.NewDetector(cs, dnssim.NewClassifier(eco.Zone))
	var leaks []core.Leak
	for _, c := range ds.Successes() {
		leaks = append(leaks, det.DetectSite(c.Domain, c.Records)...)
	}
	return eco, ds, leaks
}

func TestEvaluateBrowsers(t *testing.T) {
	eco := webgen.MustGenerate(webgen.SmallConfig(51))
	results := EvaluateBrowsers(eco, browser.Firefox88(), Profiles(eco))
	if len(results) != 6 { // baseline + 5 profiles
		t.Fatalf("results = %d", len(results))
	}
	base := results[0]
	if base.Senders != len(eco.SenderSites) {
		t.Errorf("baseline senders = %d, want %d", base.Senders, len(eco.SenderSites))
	}

	byName := map[string]BrowserResult{}
	for _, r := range results {
		byName[r.Browser] = r
	}

	// Vanilla browsers and cookie-blockers change nothing (§7.1).
	for _, name := range []string{"Chrome 93", "Opera 79.0", "Safari 14.03", "Firefox 88+ETP"} {
		r, ok := byName[name]
		if !ok {
			t.Fatalf("missing result for %s", name)
		}
		if r.Senders != base.Senders || r.Receivers != base.Receivers {
			t.Errorf("%s changed leakage: %d/%d vs %d/%d",
				name, r.Senders, r.Receivers, base.Senders, base.Receivers)
		}
		if r.SenderReductionPct != 0 {
			t.Errorf("%s reduction = %v", name, r.SenderReductionPct)
		}
	}

	brave := byName["Brave 1.29.81"]
	if brave.Senders >= base.Senders/2 {
		t.Errorf("Brave senders = %d (baseline %d), expected a large reduction", brave.Senders, base.Senders)
	}
	if brave.SenderReductionPct < 50 {
		t.Errorf("Brave sender reduction = %.1f%%", brave.SenderReductionPct)
	}
	// Survivors are exactly the Brave-missed receivers present in this
	// scaled ecosystem.
	for _, recv := range brave.MissedReceivers {
		if eco.BraveShields[recv] {
			t.Errorf("shielded receiver %s survived", recv)
		}
	}
	if brave.SignupFailures != 1 {
		t.Errorf("Brave signup failures = %d, want 1 (the CAPTCHA site)", brave.SignupFailures)
	}
}

func TestEvaluateBlocklists(t *testing.T) {
	eco, ds, leaks := smallStudy(t)
	lists, err := ParseLists(eco.EasyListText, eco.EasyPrivacyText)
	if err != nil {
		t.Fatal(err)
	}
	var trackers []string
	for _, p := range eco.Providers {
		if p.Persistent {
			trackers = append(trackers, p.Domain)
		}
	}
	t4 := EvaluateBlocklists(leaks, ds, lists, trackers)

	rows := map[string]Table4Row{}
	for _, r := range t4.Rows {
		rows[r.Metric+"/"+r.Method] = r
	}

	// EasyPrivacy must beat EasyList overall, and combined must cover
	// at least as much as either alone.
	st := rows["senders/total"]
	if st.EasyPrivacy.Count <= st.EasyList.Count {
		t.Errorf("EasyPrivacy (%d) should exceed EasyList (%d)", st.EasyPrivacy.Count, st.EasyList.Count)
	}
	if st.Combined.Count < st.EasyPrivacy.Count || st.Combined.Count < st.EasyList.Count {
		t.Errorf("combined (%d) below a single list", st.Combined.Count)
	}
	if st.EasyPrivacy.Total != len(eco.SenderSites) {
		t.Errorf("total senders = %d, want %d", st.EasyPrivacy.Total, len(eco.SenderSites))
	}
	// EasyPrivacy covers part of the population but never everything.
	// (The small config over-weights the uncovered single-sender tail;
	// the paper-scale coverage check lives in the top-level experiment
	// tests.)
	if pct := st.EasyPrivacy.Pct(); pct <= 0 || pct >= 100 {
		t.Errorf("EasyPrivacy sender coverage = %.1f%%, want a partial share", pct)
	}

	// The three §7.2 escapees stay uncovered (those present at this
	// scale).
	missed := map[string]bool{}
	for _, d := range t4.MissedTrackers {
		missed[d] = true
	}
	for _, want := range []string{"custora.com", "taboola.com", "zendesk.com"} {
		if !missed[want] {
			t.Errorf("expected %s to escape the combined lists; missed = %v", want, t4.MissedTrackers)
		}
	}

	// The cookie channel (cloaked Adobe) is covered by EasyPrivacy's
	// path rule.
	rc := rows["receivers/cookie"]
	if rc.EasyPrivacy.Total == 0 {
		t.Fatal("no cookie receivers measured")
	}
	if rc.EasyPrivacy.Count == 0 {
		t.Error("EasyPrivacy misses the cloaked cookie channel entirely")
	}
}

func TestInitiatorChain(t *testing.T) {
	_, ds, leaks := smallStudy(t)
	if len(leaks) == 0 {
		t.Fatal("no leaks")
	}
	// Find a leak whose request has an initiator; its chain must lead
	// to the tag load through the reduced request index.
	ix := httpmodel.NewRequestIndex()
	for i := range ds.Crawls {
		ix.AddSite(ds.Crawls[i].Domain, ds.Crawls[i].Records)
	}
	for _, l := range leaks {
		if chain := ix.Chain(l.Site, l.Seq); len(chain) > 0 {
			return // found a working chain
		}
	}
	t.Error("no leak produced an initiator chain")
}
