package mailbox

import (
	"reflect"
	"testing"
)

func TestDeliverAndCount(t *testing.T) {
	var m Mailbox
	m.DeliverConfirmation("shop.com", "https://shop.com/confirm?t=1")
	m.DeliverMarketing("shop.com", 3, 1)
	m.DeliverMarketing("store.net", 2, 0)

	if got := m.Count(FolderInbox); got != 5 {
		t.Errorf("inbox = %d, want 5 (confirmations excluded)", got)
	}
	if got := m.Count(FolderSpam); got != 1 {
		t.Errorf("spam = %d, want 1", got)
	}
}

func TestConfirmationLink(t *testing.T) {
	var m Mailbox
	link := m.DeliverConfirmation("shop.com", "https://shop.com/confirm?t=9")
	if link != "https://shop.com/confirm?t=9" {
		t.Errorf("link = %q", link)
	}
	if m.Messages[0].Kind != KindConfirmation || m.Messages[0].Folder != FolderInbox {
		t.Errorf("confirmation message misfiled: %+v", m.Messages[0])
	}
}

func TestFromDomains(t *testing.T) {
	var m Mailbox
	m.DeliverMarketing("a.com", 1, 0)
	m.DeliverMarketing("b.com", 1, 1)
	got := m.FromDomains()
	want := map[string]bool{"a.com": true, "b.com": true}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("FromDomains = %v", got)
	}
}

func TestFromAnyDetectsReceiverMail(t *testing.T) {
	var m Mailbox
	m.DeliverMarketing("shop.com", 2, 0)
	receivers := map[string]bool{"facebook.com": true, "criteo.com": true}
	if hits := m.FromAny(receivers); hits != nil {
		t.Errorf("unexpected receiver mail: %v", hits)
	}
	m.DeliverMarketing("criteo.com", 1, 0)
	hits := m.FromAny(receivers)
	if len(hits) != 1 || hits[0] != "criteo.com" {
		t.Errorf("hits = %v", hits)
	}
}
