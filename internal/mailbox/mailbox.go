// Package mailbox simulates the persona's e-mail account (§3.2's
// confirmation links, §4.2.3's marketing-mail observations). Sites
// deliver account-confirmation links and, after sign-up, marketing mails
// to the inbox or spam folder; the study checks that no mail ever
// arrives from the third-party leak receivers.
package mailbox

import "fmt"

// Folder names a mailbox folder.
type Folder string

// Mailbox folders.
const (
	FolderInbox Folder = "inbox"
	FolderSpam  Folder = "spam"
)

// Kind classifies a message.
type Kind string

// Message kinds.
const (
	KindConfirmation Kind = "confirmation"
	KindMarketing    Kind = "marketing"
	KindSpam         Kind = "spam"
)

// Message is one delivered mail.
type Message struct {
	// FromDomain is the sending registrable domain.
	FromDomain string
	Subject    string
	Kind       Kind
	Folder     Folder
	// ConfirmLink carries the account-activation URL for
	// confirmation mails.
	ConfirmLink string
}

// Mailbox accumulates messages for one persona.
type Mailbox struct {
	Messages []Message
}

// DeliverConfirmation delivers an activation mail and returns its link.
func (m *Mailbox) DeliverConfirmation(siteDomain, link string) string {
	m.Messages = append(m.Messages, Message{
		FromDomain:  siteDomain,
		Subject:     "Confirm your account",
		Kind:        KindConfirmation,
		Folder:      FolderInbox,
		ConfirmLink: link,
	})
	return link
}

// DeliverMarketing delivers n inbox marketing mails and nSpam spam-folder
// mails from a site.
func (m *Mailbox) DeliverMarketing(siteDomain string, n, nSpam int) {
	for i := 0; i < n; i++ {
		m.Messages = append(m.Messages, Message{
			FromDomain: siteDomain,
			Subject:    fmt.Sprintf("Weekly deals #%d", i+1),
			Kind:       KindMarketing,
			Folder:     FolderInbox,
		})
	}
	for i := 0; i < nSpam; i++ {
		m.Messages = append(m.Messages, Message{
			FromDomain: siteDomain,
			Subject:    fmt.Sprintf("!!! Mega sale %d !!!", i+1),
			Kind:       KindSpam,
			Folder:     FolderSpam,
		})
	}
}

// Count returns the number of non-confirmation messages in a folder
// (the paper's 2,172 / 141 statistic excludes activation mails).
func (m *Mailbox) Count(folder Folder) int {
	n := 0
	for _, msg := range m.Messages {
		if msg.Folder == folder && msg.Kind != KindConfirmation {
			n++
		}
	}
	return n
}

// FromDomains returns the distinct sending domains.
func (m *Mailbox) FromDomains() map[string]bool {
	out := map[string]bool{}
	for _, msg := range m.Messages {
		out[msg.FromDomain] = true
	}
	return out
}

// FromAny reports whether any message came from one of the given
// domains — the §4.2.3 check that leak receivers never mail the persona.
func (m *Mailbox) FromAny(domains map[string]bool) []string {
	var hits []string
	seen := map[string]bool{}
	for _, msg := range m.Messages {
		if domains[msg.FromDomain] && !seen[msg.FromDomain] {
			seen[msg.FromDomain] = true
			hits = append(hits, msg.FromDomain)
		}
	}
	return hits
}
