// Package pipeline fuses the study's crawl and detection stages into
// one streaming pass. Crawl workers emit per-site captures into a
// bounded channel; detect workers scan each capture as it arrives and
// release the records immediately afterwards (keeping only the reduced
// request index the §7.2 blocklist evaluation needs); a single
// accumulation goroutine folds the resulting leaks into the shared
// Result store — the §4.2 analysis indexes, the §5 tracking index and
// the §6 policy-audit sender set — in one pass. Peak memory is bounded
// by the number of captures in flight (crawl workers + channel buffer +
// detect workers) instead of the whole crawl.
//
// Determinism: per-site leaks are collected in site-index slots and
// concatenated in site order at the end, detection runs only on
// successful crawls (exactly the batch path's Successes loop), and
// every accumulated aggregate is a set — so batch, streamed-serial,
// streamed-parallel and checkpoint-resumed runs produce byte-identical
// leak output and identical table numbers regardless of completion
// order.
package pipeline

import (
	"context"
	"fmt"
	"sync"

	"piileak/internal/browser"
	"piileak/internal/core"
	"piileak/internal/crawler"
	"piileak/internal/detect"
	"piileak/internal/httpmodel"
	"piileak/internal/obs"
	"piileak/internal/site"
	"piileak/internal/tracking"
	"piileak/internal/webgen"
)

// Detector is what the detection stage needs from a scanner. The
// production implementation is *detect.Engine (each detect worker
// derives a private Scanner from it); *core.Detector still satisfies it,
// and tests substitute misbehaving detectors to exercise the crash-only
// path.
type Detector interface {
	DetectSite(siteDomain string, records []httpmodel.Record) []core.Leak
}

// Options configures a streamed study run. The embedded crawler.Options
// is the single source of truth for the crawl stage — its Workers field
// IS the crawl parallelism (<= 1 crawls serially with one browser), its
// Obs field is the run's observer, and its site-subset / fault /
// checkpoint / watchdog knobs apply unchanged. There is no separate
// CrawlWorkers override anymore; Validate rejects contradictions
// instead of silently preferring one side.
type Options struct {
	crawler.Options

	// DetectWorkers sets the detection stage's parallelism; <= 0 means
	// one worker.
	DetectWorkers int
	// Buffer is the capture channel's capacity; <= 0 selects 2. Together
	// with the worker counts it bounds the captures in flight.
	Buffer int
	// KeepRecords retains full captures in the assembled dataset (the
	// batch-compatible mode Study.Run uses). When false, records are
	// released after detection and the dataset is thin.
	KeepRecords bool
	// Progress, when set, receives per-stage completion events. It is
	// never called concurrently.
	Progress func(Event)
	// Sink, when set, receives every site's final output — crawl
	// record (thinned unless KeepRecords), side effects, leaks and the
	// reduced request list — in site order, after accumulation
	// finishes. It is the shard runtime's extraction point: a shard
	// worker collects SiteOuts to serialize per-site results for the
	// verified merge. Never called concurrently.
	Sink func(SiteOut)
}

// Validate rejects contradictory or nonsensical settings, delegating
// the crawl-level checks to the embedded crawler.Options.
func (o Options) Validate() error {
	if err := o.Options.Validate(); err != nil {
		return err
	}
	if o.Workers < 0 {
		return fmt.Errorf("pipeline: negative crawl Workers %d", o.Workers)
	}
	if o.DetectWorkers < 0 {
		return fmt.Errorf("pipeline: negative DetectWorkers %d", o.DetectWorkers)
	}
	if o.Buffer < 0 {
		return fmt.Errorf("pipeline: negative Buffer %d", o.Buffer)
	}
	return nil
}

// Event is one progress tick from a pipeline stage.
type Event struct {
	// Stage is "crawl" or "detect".
	Stage string
	// Done counts completed sites in the stage, out of Total.
	Done, Total int
	// Site is the domain that just completed.
	Site string
	// Outcome is the site's crawl outcome (crawl events only) — the
	// funnel bucket progress consumers surface without waiting for the
	// assembled dataset.
	Outcome string
	// Leaks is the cumulative leak count (detect events only).
	Leaks int
}

// SiteOut is one site's complete pipeline output as delivered to
// Options.Sink: the (possibly thinned) crawl result with its mail and
// shield-block side effects, the detected leaks, the reduced request
// list (leaky sites only), and the pre-release record count.
type SiteOut struct {
	// Result is the site's crawl output; Result.Index is its index in
	// the run's site list.
	Result crawler.SiteResult
	// Leaks are the site's detected leaks, in detection order.
	Leaks []core.Leak
	// Requests is the reduced request list when the site leaked (the
	// §7.2 evaluation's retained state); nil otherwise.
	Requests []httpmodel.IndexedRequest
	// Records is the site's captured request count before any release.
	Records int
}

// Stats carries a finished run's counters.
type Stats struct {
	// Sites is the crawled-site count; Successes the auth-flow
	// completions (the analysis denominator).
	Sites, Successes int
	// Leaks is the total detected leak count.
	Leaks int
	// CaptureHighWater is the maximum number of record-bearing captures
	// simultaneously in flight — the pipeline's memory bound. Zero when
	// KeepRecords kept every capture alive.
	CaptureHighWater int
	// Released counts sites whose records were dropped after detection.
	Released int
}

// Result is the shared study store every downstream view reads from:
// §4.2 analysis, §5 tracking classification, §6 audit senders and the
// §7.2 request index all come out of the same single-pass accumulation.
type Result struct {
	// Leaks is the full leak list in site order — byte-identical to the
	// batch detection loop's output.
	Leaks []core.Leak
	// Analysis is the finalized §4.2 aggregate view.
	Analysis *core.Analysis
	// Tracking is the incremental §5 index; call Classification() for
	// the Table 2 census.
	Tracking *tracking.Index
	// Senders is the distinct leaking first parties — the §6 policy
	// audit population.
	Senders map[string]bool
	// Requests is the reduced per-site request index (leaky sites only)
	// for the §7.2 blocklist evaluation.
	Requests *httpmodel.RequestIndex
	// Dataset is the assembled crawl dataset: full captures under
	// KeepRecords, thin (records released) otherwise.
	Dataset *crawler.Dataset
	// TotalRecords counts captured requests across all sites, counted
	// before any release.
	TotalRecords int
	// Stats carries the run counters.
	Stats Stats
}

// siteOutput is one site after detection: the (possibly thinned) crawl
// result, its leaks, the reduced request list when the site leaked, and
// the pre-release record count.
type siteOutput struct {
	res     crawler.SiteResult
	leaks   []core.Leak
	reqs    []httpmodel.IndexedRequest
	records int
}

// detectGuarded runs detection on one capture with panic isolation: a
// detector that blows up on a poison site loses that site (recorded as
// OutcomeCrashed and quarantined with its stack), not the study.
func detectGuarded(det Detector, out *siteOutput, eco *webgen.Ecosystem, copts crawler.Options) {
	defer func() {
		if r := recover(); r != nil {
			out.leaks = nil
			out.res.Crawl.Outcome = crawler.OutcomeCrashed
			var faultSeed uint64
			if inj := copts.Faults; inj != nil {
				faultSeed = inj.Seed()
			} else if eco.Faults != nil {
				faultSeed = eco.Faults.Seed()
			}
			copts.Quarantine.Add(crawler.BundleFor(crawler.StageDetect, &out.res.Crawl, eco.Config.Seed, faultSeed, r))
			copts.Obs.CountKind(obs.MetricQuarantined, crawler.StageDetect, 1)
		}
	}()
	out.leaks = det.DetectSite(out.res.Crawl.Domain, out.res.Crawl.Records)
}

// Run executes the fused crawl+detect+accumulate pipeline and returns
// the shared result store. Cancelling ctx stops the crawl stage (the
// site in flight is discarded, exactly as in crawler.CrawlStream); the
// detect and accumulate stages drain what was already captured before
// Run returns ctx's error, so a checkpointed run is left resumable. A
// panicking detector does not kill the run: the site is marked
// OutcomeCrashed, quarantined (opts.Quarantine), and skipped. opts.Obs
// observes every stage; a nil observer costs nothing.
func Run(ctx context.Context, eco *webgen.Ecosystem, profile browser.Profile, det Detector, opts Options) (*Result, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	src := opts.Options.Source
	if src == nil {
		if opts.Sites != nil {
			src = site.Slice(opts.Sites)
		} else {
			src = eco.Universe()
		}
	}
	total := src.Len()
	o := opts.Obs

	detectWorkers := opts.DetectWorkers
	if detectWorkers <= 0 {
		detectWorkers = 1
	}
	buffer := opts.Buffer
	if buffer <= 0 {
		buffer = 2
	}

	var (
		progressMu sync.Mutex
		crawled    int
	)
	emitEvent := func(ev Event) {
		if opts.Progress == nil {
			return
		}
		progressMu.Lock()
		opts.Progress(ev)
		progressMu.Unlock()
	}

	var g obs.Watermark
	captures := make(chan crawler.SiteResult, buffer)
	outputs := make(chan siteOutput, buffer)

	// Stage 1: crawl. Emissions block on the captures channel, which is
	// the backpressure that bounds the pipeline's in-flight state. The
	// resolved source replaces any Sites slice so the crawl and the
	// accumulator agree on the population.
	copts := opts.Options
	copts.Source = src
	copts.Sites = nil
	var crawlErr error
	go func() {
		defer close(captures)
		crawlErr = crawler.CrawlStream(ctx, eco, profile, copts, func(r crawler.SiteResult) error {
			g.Inc()
			captures <- r
			progressMu.Lock()
			crawled++
			n := crawled
			progressMu.Unlock()
			if opts.Progress != nil {
				emitEvent(Event{Stage: "crawl", Done: n, Total: total, Site: r.Crawl.Domain, Outcome: string(r.Crawl.Outcome)})
			}
			return nil
		})
	}()

	// Stage 2: detect. Each worker scans a capture's records and then
	// releases them (unless KeepRecords), reducing leaky sites to the
	// request index first.
	var wg sync.WaitGroup
	for w := 0; w < detectWorkers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// An Engine detector is shared compile-time state; each
			// worker scans through its own Scanner so the per-record
			// scratch (match buffers, decode buffers, receiver memo) is
			// never contended.
			wdet := det
			if eng, ok := det.(*detect.Engine); ok {
				wdet = eng.NewScanner()
			}
			for r := range captures {
				sp := o.StartSpan(obs.StageDetect, r.Crawl.Domain, r.Index)
				out := siteOutput{res: r, records: len(r.Crawl.Records)}
				if r.Crawl.Outcome == crawler.OutcomeSuccess {
					detectGuarded(wdet, &out, eco, copts)
				}
				if len(out.leaks) > 0 {
					out.reqs = httpmodel.ReduceRecords(r.Crawl.Records)
				}
				if !opts.KeepRecords {
					out.res.Crawl.Records = nil
				}
				g.Dec()
				sp.SetN(len(out.leaks))
				sp.End()
				outputs <- out
			}
		}()
	}
	go func() {
		wg.Wait()
		close(outputs)
	}()

	// Stage 3: accumulate — the single goroutine (this one) that owns
	// the shared store. Per-site leaks land in site-index slots so the
	// final concatenation is in site order no matter when each site
	// finished.
	acc := core.NewAccumulator()
	trk := tracking.NewIndex()
	reqIx := httpmodel.NewRequestIndex()
	leaksBySite := make([][]core.Leak, total)
	results := make([]crawler.SiteResult, total)
	var reqsBySite [][]httpmodel.IndexedRequest
	var recordsBySite []int
	if opts.Sink != nil {
		reqsBySite = make([][]httpmodel.IndexedRequest, total)
		recordsBySite = make([]int, total)
	}
	stats := Stats{}
	totalRecords := 0
	detected := 0
	leakCount := 0
	for out := range outputs {
		ap := o.StartSpan(obs.StageAccumulate, out.res.Crawl.Domain, out.res.Index)
		results[out.res.Index] = out.res
		leaksBySite[out.res.Index] = out.leaks
		for i := range out.leaks {
			l := &out.leaks[i]
			acc.Add(l)
			trk.Add(l)
		}
		if out.reqs != nil {
			reqIx.AddReduced(out.res.Crawl.Domain, out.reqs)
		}
		if opts.Sink != nil {
			reqsBySite[out.res.Index] = out.reqs
			recordsBySite[out.res.Index] = out.records
		}
		if out.res.Crawl.Outcome == crawler.OutcomeSuccess {
			acc.AddSites(1)
			stats.Successes++
		}
		if !opts.KeepRecords && out.records > 0 {
			stats.Released++
			o.Count(obs.MetricReleased, 1)
		}
		totalRecords += out.records
		leakCount += len(out.leaks)
		detected++
		o.Count(obs.MetricDetectSites, 1)
		o.Count(obs.MetricDetectLeaks, int64(len(out.leaks)))
		o.Observe(obs.HistSiteLeaks, int64(len(out.leaks)))
		ap.SetN(len(out.leaks))
		ap.End()
		emitEvent(Event{Stage: "detect", Done: detected, Total: total, Site: out.res.Crawl.Domain, Leaks: leakCount})
	}
	if crawlErr != nil {
		return nil, crawlErr
	}

	var leaks []core.Leak
	for _, ls := range leaksBySite {
		leaks = append(leaks, ls...)
	}
	ds := crawler.DatasetShell(eco, profile)
	for i := range results {
		ds.Merge(results[i])
	}
	if opts.Sink != nil {
		// Site order, like every other deterministic output — the sink
		// sees the run exactly as the dataset records it, regardless of
		// the order sites completed in.
		for i := range results {
			opts.Sink(SiteOut{
				Result:   results[i],
				Leaks:    leaksBySite[i],
				Requests: reqsBySite[i],
				Records:  recordsBySite[i],
			})
		}
	}

	stats.Sites = total
	stats.Leaks = len(leaks)
	stats.CaptureHighWater = int(g.High())
	if opts.KeepRecords {
		stats.CaptureHighWater = 0
	} else {
		// Streamed runs export the memory bound. It is the registry's one
		// scheduler-dependent value (a bound, not an exact replay) in
		// parallel runs, so batch mode omits it entirely. Ratcheted, not
		// set: a sharded study's workers share one observer, and the
		// study-wide bound is the worst shard's.
		o.GaugeMax(obs.MetricCaptureHighWater, g.High())
	}

	return &Result{
		Leaks:        leaks,
		Analysis:     acc.Finalize(leaks),
		Tracking:     trk,
		Senders:      acc.SenderSet(),
		Requests:     reqIx,
		Dataset:      ds,
		TotalRecords: totalRecords,
		Stats:        stats,
	}, nil
}
