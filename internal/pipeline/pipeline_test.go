package pipeline

import (
	"bytes"
	"context"
	"reflect"
	"testing"

	"piileak/internal/browser"
	"piileak/internal/core"
	"piileak/internal/crawler"
	"piileak/internal/dnssim"
	"piileak/internal/pii"
	"piileak/internal/webgen"
)

func fixture(t testing.TB, seed uint64) (*webgen.Ecosystem, browser.Profile, *core.Detector) {
	t.Helper()
	eco, err := webgen.Generate(webgen.SmallConfig(seed))
	if err != nil {
		t.Fatal(err)
	}
	cs, err := pii.BuildCandidates(eco.Persona, pii.CandidateConfig{MaxDepth: 2})
	if err != nil {
		t.Fatal(err)
	}
	return eco, browser.Firefox88(), core.NewDetector(cs, dnssim.NewClassifier(eco.Zone))
}

// TestRunMatchesBatch: the streamed pipeline must reproduce the batch
// crawl-then-detect path exactly — same leaks in the same order, and
// (under KeepRecords) a byte-identical dataset.
func TestRunMatchesBatch(t *testing.T) {
	eco, profile, det := fixture(t, 29)

	batchDS := crawler.Crawl(eco, profile)
	var batchLeaks []core.Leak
	for _, c := range batchDS.Successes() {
		batchLeaks = append(batchLeaks, det.DetectSite(c.Domain, c.Records)...)
	}

	for _, tc := range []struct {
		name string
		opts Options
	}{
		{"serial", Options{KeepRecords: true}},
		{"parallel", Options{Options: crawler.Options{Workers: 4}, DetectWorkers: 3, KeepRecords: true}},
	} {
		res, err := Run(context.Background(), eco, profile, det, tc.opts)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if !reflect.DeepEqual(res.Leaks, batchLeaks) {
			t.Errorf("%s: leaks diverge from batch (%d vs %d)", tc.name, len(res.Leaks), len(batchLeaks))
		}
		var got, want bytes.Buffer
		if err := res.Dataset.WriteJSON(&got); err != nil {
			t.Fatal(err)
		}
		if err := batchDS.WriteJSON(&want); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got.Bytes(), want.Bytes()) {
			t.Errorf("%s: KeepRecords dataset is not byte-identical to the batch crawl", tc.name)
		}
		if res.TotalRecords != batchDS.TotalRecords() {
			t.Errorf("%s: TotalRecords = %d, want %d", tc.name, res.TotalRecords, batchDS.TotalRecords())
		}
	}
}

// TestMemoryBound demonstrates the pipeline's memory guarantee: the
// number of record-bearing captures simultaneously alive never exceeds
// crawl workers + channel buffer + detect workers, and every capture's
// records are released after detection.
func TestMemoryBound(t *testing.T) {
	eco, profile, det := fixture(t, 29)

	for _, tc := range []struct {
		name                          string
		crawlW, detectW, buffer, want int
	}{
		{"serial", 0, 0, 0, 1 + 2 + 1},
		{"parallel", 4, 2, 2, 4 + 2 + 2},
		{"wide", 8, 4, 1, 8 + 1 + 4},
	} {
		res, err := Run(context.Background(), eco, profile, det, Options{
			Options: crawler.Options{Workers: tc.crawlW}, DetectWorkers: tc.detectW, Buffer: tc.buffer,
		})
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		hw := res.Stats.CaptureHighWater
		if hw > tc.want {
			t.Errorf("%s: capture high-water %d exceeds bound %d", tc.name, hw, tc.want)
		}
		if hw < 1 {
			t.Errorf("%s: capture high-water %d, want >= 1", tc.name, hw)
		}
		if res.Stats.Released == 0 {
			t.Errorf("%s: no captures released", tc.name)
		}
		if res.Stats.Released > res.Stats.Sites {
			t.Errorf("%s: released %d > sites %d", tc.name, res.Stats.Released, res.Stats.Sites)
		}
		for i := range res.Dataset.Crawls {
			if len(res.Dataset.Crawls[i].Records) != 0 {
				t.Fatalf("%s: site %s retained records after release", tc.name, res.Dataset.Crawls[i].Domain)
			}
		}
		if res.TotalRecords == 0 {
			t.Errorf("%s: lost the pre-release record count", tc.name)
		}
	}
}

// TestProgressEvents pins the progress contract: both stages report
// every site, monotonically, with the final detect event carrying the
// total leak count.
func TestProgressEvents(t *testing.T) {
	eco, profile, det := fixture(t, 29)

	crawlDone, detectDone, lastLeaks := 0, 0, -1
	res, err := Run(context.Background(), eco, profile, det, Options{
		Options: crawler.Options{Workers: 3}, DetectWorkers: 2,
		Progress: func(ev Event) {
			switch ev.Stage {
			case "crawl":
				if ev.Done != crawlDone+1 {
					t.Errorf("crawl events not monotonic: %d after %d", ev.Done, crawlDone)
				}
				crawlDone = ev.Done
			case "detect":
				if ev.Done != detectDone+1 {
					t.Errorf("detect events not monotonic: %d after %d", ev.Done, detectDone)
				}
				detectDone = ev.Done
				lastLeaks = ev.Leaks
			default:
				t.Errorf("unknown stage %q", ev.Stage)
			}
			if ev.Total != len(eco.Sites) {
				t.Errorf("event total = %d, want %d", ev.Total, len(eco.Sites))
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if crawlDone != len(eco.Sites) || detectDone != len(eco.Sites) {
		t.Errorf("stage counters = crawl %d / detect %d, want %d", crawlDone, detectDone, len(eco.Sites))
	}
	if lastLeaks != len(res.Leaks) {
		t.Errorf("final detect event reported %d leaks, want %d", lastLeaks, len(res.Leaks))
	}
}

// TestResultStoreViews: the Result store's derived views must agree
// with the standalone computations over the leak list.
func TestResultStoreViews(t *testing.T) {
	eco, profile, det := fixture(t, 29)
	res, err := Run(context.Background(), eco, profile, det, Options{Options: crawler.Options{Workers: 2}, DetectWorkers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Analysis, core.Analyze(res.Leaks, res.Stats.Successes)) {
		t.Error("incremental analysis diverges from core.Analyze over the same leaks")
	}
	senders := map[string]bool{}
	for i := range res.Leaks {
		senders[res.Leaks[i].Site] = true
	}
	if !reflect.DeepEqual(res.Senders, senders) {
		t.Error("sender set diverges from the leak list's distinct sites")
	}
	for site := range senders {
		if !res.Requests.Has(site) {
			t.Errorf("request index missing leaky site %s", site)
		}
	}
}
