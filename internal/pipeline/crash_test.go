package pipeline

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"piileak/internal/core"
	"piileak/internal/crawler"
	"piileak/internal/httpmodel"
)

// poisonDetector panics on one site and defers to the real detector
// everywhere else — the "one malformed capture kills the study" bug the
// detect-stage quarantine exists to contain.
type poisonDetector struct {
	real   Detector
	victim string
}

func (p poisonDetector) DetectSite(site string, records []httpmodel.Record) []core.Leak {
	if site == p.victim {
		panic("poison capture: " + site)
	}
	return p.real.DetectSite(site, records)
}

// TestDetectorPanicQuarantinesSite: a detector that panics on one site
// must not kill the run — the site is marked crashed and quarantined,
// every other site's leaks survive, and the success denominator
// excludes the lost site.
func TestDetectorPanicQuarantinesSite(t *testing.T) {
	eco, profile, det := fixture(t, 29)

	base, err := Run(context.Background(), eco, profile, det, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(base.Leaks) == 0 {
		t.Fatal("baseline run found no leaks (test premise)")
	}
	victim := base.Leaks[0].Site
	var wantLeaks []core.Leak
	for _, l := range base.Leaks {
		if l.Site != victim {
			wantLeaks = append(wantLeaks, l)
		}
	}

	for _, tc := range []struct {
		name string
		opts Options
	}{
		{"serial", Options{}},
		{"parallel", Options{Options: crawler.Options{Workers: 4}, DetectWorkers: 3}},
	} {
		q, err := crawler.NewQuarantine(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		opts := tc.opts
		opts.Quarantine = q
		res, err := Run(context.Background(), eco, profile, poisonDetector{real: det, victim: victim}, opts)
		if err != nil {
			t.Fatalf("%s: a panicking detector killed the run: %v", tc.name, err)
		}
		if !reflect.DeepEqual(res.Leaks, wantLeaks) {
			t.Errorf("%s: leaks = %d, want %d (baseline minus the poison site)", tc.name, len(res.Leaks), len(wantLeaks))
		}
		crashed := 0
		for i := range res.Dataset.Crawls {
			c := &res.Dataset.Crawls[i]
			if c.Domain == victim {
				if c.Outcome != crawler.OutcomeCrashed {
					t.Errorf("%s: poison site outcome = %s, want crashed", tc.name, c.Outcome)
				}
			}
			if c.Outcome == crawler.OutcomeCrashed {
				crashed++
			}
		}
		if crashed != 1 {
			t.Errorf("%s: %d crashed sites, want 1", tc.name, crashed)
		}
		if res.Stats.Successes != base.Stats.Successes-1 {
			t.Errorf("%s: successes = %d, want %d (poison site must leave the denominator)", tc.name, res.Stats.Successes, base.Stats.Successes-1)
		}

		bundles, err := crawler.ReadManifest(q.ManifestPath())
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if len(bundles) != 1 {
			t.Fatalf("%s: manifest holds %d bundles, want 1", tc.name, len(bundles))
		}
		b := bundles[0]
		if b.Stage != crawler.StageDetect || b.Domain != victim || b.Outcome != crawler.OutcomeCrashed {
			t.Errorf("%s: bundle = %+v, want detect-stage crash of %s", tc.name, b, victim)
		}
		if b.Panic == "" || b.Stack == "" {
			t.Errorf("%s: bundle missing diagnostics: panic=%q stack %d bytes", tc.name, b.Panic, len(b.Stack))
		}
	}
}

// TestRunCancelledContext: a pre-cancelled context returns
// context.Canceled without producing a result.
func TestRunCancelledContext(t *testing.T) {
	eco, profile, det := fixture(t, 29)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := Run(ctx, eco, profile, det, Options{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res != nil {
		t.Error("cancelled run still returned a result")
	}
}
