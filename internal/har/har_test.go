package har

import (
	"strings"
	"testing"

	"piileak/internal/core"
	"piileak/internal/httpmodel"
	"piileak/internal/pii"
)

const sampleHAR = `{
  "log": {
    "version": "1.2",
    "pages": [{"id": "page_1", "title": "Shop"}],
    "entries": [
      {
        "pageref": "page_1",
        "startedDateTime": "2021-05-10T12:00:00.000Z",
        "request": {
          "method": "get",
          "url": "https://www.shop.example/account/signup",
          "headers": [{"name": "User-Agent", "value": "Firefox/88"}],
          "cookies": []
        },
        "response": {
          "status": 200,
          "headers": [{"name": "Content-Type", "value": "text/html"}],
          "cookies": [{"name": "session", "value": "s1", "domain": "www.shop.example"}]
        }
      },
      {
        "pageref": "page_1",
        "startedDateTime": "2021-05-10T12:00:02.000Z",
        "_initiator": {"type": "script", "url": "https://www.facebook.com/en_US/fbevents.js"},
        "request": {
          "method": "GET",
          "url": "https://www.facebook.com/tr/?udff%5Bem%5D=HASHEDEMAIL&v=2",
          "headers": [{"name": "Referer", "value": "https://www.shop.example/account/signup"}],
          "cookies": [{"name": "fr", "value": "xyz", "domain": ".facebook.com"}]
        },
        "response": {"status": 200, "headers": [], "cookies": []}
      },
      {
        "pageref": "page_1",
        "startedDateTime": "2021-05-10T12:00:01.000Z",
        "request": {
          "method": "POST",
          "url": "https://api.tracker.example/events",
          "headers": [],
          "cookies": [],
          "postData": {"mimeType": "application/json", "text": "{\"email\":\"PLAINEMAIL\"}"}
        },
        "response": {"status": 204, "headers": [], "cookies": []}
      }
    ]
  }
}`

func TestParseSample(t *testing.T) {
	recs, err := Parse(strings.NewReader(sampleHAR))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("records = %d", len(recs))
	}
	// Entries sorted by start time: signup, POST, pixel.
	if recs[0].Request.URL != "https://www.shop.example/account/signup" {
		t.Errorf("first record = %s", recs[0].Request.URL)
	}
	if recs[1].Request.Method != "POST" {
		t.Errorf("second record method = %s", recs[1].Request.Method)
	}
	if recs[0].Request.Method != "GET" {
		t.Errorf("method not upper-cased: %s", recs[0].Request.Method)
	}
	// Page resolution via pageref.
	for _, r := range recs {
		if r.Page != "https://www.shop.example/account/signup" {
			t.Errorf("page = %s", r.Page)
		}
	}
	// Initiator carried over.
	if recs[2].Request.Initiator != "https://www.facebook.com/en_US/fbevents.js" {
		t.Errorf("initiator = %s", recs[2].Request.Initiator)
	}
	// Cookies and body.
	if len(recs[2].Request.Cookies) != 1 || recs[2].Request.Cookies[0].Name != "fr" {
		t.Errorf("cookies = %+v", recs[2].Request.Cookies)
	}
	if recs[1].Request.BodyType != "application/json" || len(recs[1].Request.Body) == 0 {
		t.Errorf("body = %+v", recs[1].Request)
	}
	if recs[0].Response.SetCookies[0].Name != "session" {
		t.Errorf("set-cookies = %+v", recs[0].Response.SetCookies)
	}
}

func TestParseErrors(t *testing.T) {
	if _, err := Parse(strings.NewReader("{broken")); err == nil {
		t.Error("malformed JSON accepted")
	}
	noURL := `{"log":{"entries":[{"request":{"method":"GET","url":""},"response":{"status":200}}]}}`
	if _, err := Parse(strings.NewReader(noURL)); err == nil {
		t.Error("entry without URL accepted")
	}
}

func TestGuessType(t *testing.T) {
	cases := map[string]httpmodel.ResourceType{
		"https://x/app.js":        httpmodel.TypeScript,
		"https://x/style.css":     httpmodel.TypeStylesheet,
		"https://x/pixel.gif":     httpmodel.TypeImage,
		"https://x/path/":         httpmodel.TypeDocument,
		"https://x/account":       httpmodel.TypeDocument,
		"https://x/file.woff2":    httpmodel.TypeOther,
		"https://x/app.js?v=1234": httpmodel.TypeScript,
	}
	for u, want := range cases {
		e := Entry{Request: Request{URL: u}}
		if got := guessType(&e); got != want {
			t.Errorf("guessType(%s) = %s, want %s", u, got, want)
		}
	}
	post := Entry{Request: Request{URL: "https://x/collect", PostData: &PostData{}}}
	if got := guessType(&post); got != httpmodel.TypeXHR {
		t.Errorf("POST type = %s", got)
	}
}

func TestPostDataParams(t *testing.T) {
	harDoc := `{"log":{"entries":[{
      "startedDateTime":"2021-05-10T12:00:00Z",
      "request":{"method":"POST","url":"https://t.example/e","headers":[],"cookies":[],
        "postData":{"mimeType":"","params":[{"name":"em","value":"x@y.z"},{"name":"v","value":"2"}]}},
      "response":{"status":200,"headers":[],"cookies":[]}}]}}`
	recs, err := Parse(strings.NewReader(harDoc))
	if err != nil {
		t.Fatal(err)
	}
	if string(recs[0].Request.Body) != "em=x@y.z&v=2" {
		t.Errorf("body = %q", recs[0].Request.Body)
	}
	if recs[0].Request.BodyType != "application/x-www-form-urlencoded" {
		t.Errorf("body type = %q", recs[0].Request.BodyType)
	}
}

// TestHARFeedsDetector is the integration the package exists for: a HAR
// capture with a real hashed-email leak runs through the §4 detector.
func TestHARFeedsDetector(t *testing.T) {
	p := pii.Default()
	sha := string(pii.MustApplyChain(p.Email, []string{"sha256"}))
	harDoc := strings.Replace(sampleHAR, "HASHEDEMAIL", sha, 1)

	recs, err := Parse(strings.NewReader(harDoc))
	if err != nil {
		t.Fatal(err)
	}
	cs := pii.MustBuildCandidates(p, pii.CandidateConfig{
		MaxDepth: 1, Transforms: []string{"sha256"},
	})
	det := core.NewDetector(cs, nil)
	leaks := det.DetectSite("shop.example", recs)
	if len(leaks) != 1 {
		t.Fatalf("leaks = %+v", leaks)
	}
	if leaks[0].Receiver != "facebook.com" || leaks[0].Param != "udff[em]" {
		t.Errorf("leak = %+v", leaks[0])
	}
}

func TestParseFileFixture(t *testing.T) {
	recs, err := ParseFile("testdata/capture.har")
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("records = %d", len(recs))
	}
	if recs[1].Request.Host() != "ct.pinterest.com" {
		t.Errorf("host = %s", recs[1].Request.Host())
	}
}

func TestParseFileMissing(t *testing.T) {
	if _, err := ParseFile("testdata/nope.har"); err == nil {
		t.Error("missing file accepted")
	}
}
