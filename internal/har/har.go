// Package har imports HTTP Archive (HAR 1.2) captures — the format every
// major browser's devtools exports — into the study's traffic model, so
// the §4 leak detector runs unchanged on real-world recordings.
//
// The importer understands the standard entry fields (request method,
// URL, headers, cookies, postData; response status, headers, cookies)
// plus Chrome's nonstandard `_initiator`, which feeds the blocklist
// evaluation's initiator chains.
package har

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"time"

	"piileak/internal/httpmodel"
)

// File is the top-level HAR document.
type File struct {
	Log Log `json:"log"`
}

// Log holds the capture.
type Log struct {
	Version string  `json:"version"`
	Pages   []Page  `json:"pages"`
	Entries []Entry `json:"entries"`
}

// Page is one top-level navigation.
type Page struct {
	ID    string `json:"id"`
	Title string `json:"title"`
}

// Entry is one request/response exchange.
type Entry struct {
	PageRef         string    `json:"pageref"`
	StartedDateTime time.Time `json:"startedDateTime"`
	Request         Request   `json:"request"`
	Response        Response  `json:"response"`
	// Initiator is Chrome's nonstandard extension.
	Initiator *Initiator `json:"_initiator,omitempty"`
}

// Request is a HAR request.
type Request struct {
	Method   string    `json:"method"`
	URL      string    `json:"url"`
	Headers  []NameVal `json:"headers"`
	Cookies  []HCookie `json:"cookies"`
	PostData *PostData `json:"postData,omitempty"`
}

// Response is a HAR response.
type Response struct {
	Status  int       `json:"status"`
	Headers []NameVal `json:"headers"`
	Cookies []HCookie `json:"cookies"`
}

// NameVal is a HAR name/value pair.
type NameVal struct {
	Name  string `json:"name"`
	Value string `json:"value"`
}

// HCookie is a HAR cookie.
type HCookie struct {
	Name   string `json:"name"`
	Value  string `json:"value"`
	Domain string `json:"domain,omitempty"`
	Path   string `json:"path,omitempty"`
}

// PostData is a HAR request body.
type PostData struct {
	MimeType string    `json:"mimeType"`
	Text     string    `json:"text"`
	Params   []NameVal `json:"params,omitempty"`
}

// Initiator is Chrome's request-initiator annotation.
type Initiator struct {
	Type string `json:"type"`
	URL  string `json:"url,omitempty"`
}

// Parse reads a HAR document and converts it to traffic records,
// ordered by start time. Page URLs come from each entry's pageref when
// resolvable, falling back to the entry's own URL for documents.
func Parse(r io.Reader) ([]httpmodel.Record, error) {
	var f File
	dec := json.NewDecoder(r)
	if err := dec.Decode(&f); err != nil {
		return nil, fmt.Errorf("har: decoding: %w", err)
	}
	return f.Records()
}

// ParseFile is Parse on a file path.
func ParseFile(path string) (recs []httpmodel.Record, err error) {
	fh, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("har: %w", err)
	}
	defer func() {
		if cerr := fh.Close(); cerr != nil && err == nil {
			err = fmt.Errorf("har: %w", cerr)
		}
	}()
	return Parse(fh)
}

// Records converts the log's entries.
func (f *File) Records() ([]httpmodel.Record, error) {
	entries := append([]Entry(nil), f.Log.Entries...)
	sort.SliceStable(entries, func(a, b int) bool {
		return entries[a].StartedDateTime.Before(entries[b].StartedDateTime)
	})

	// First document URL per pageref.
	pageURL := map[string]string{}
	for _, e := range entries {
		if e.PageRef == "" {
			continue
		}
		if _, ok := pageURL[e.PageRef]; !ok {
			pageURL[e.PageRef] = e.Request.URL
		}
	}

	out := make([]httpmodel.Record, 0, len(entries))
	for i, e := range entries {
		if e.Request.URL == "" {
			return nil, fmt.Errorf("har: entry %d has no request URL", i)
		}
		rec := httpmodel.Record{
			Seq:  i + 1,
			Page: pageURL[e.PageRef],
			Request: httpmodel.Request{
				Method: strings.ToUpper(e.Request.Method),
				URL:    e.Request.URL,
				Type:   guessType(&e),
			},
			Response: httpmodel.Response{Status: e.Response.Status},
		}
		if rec.Page == "" {
			rec.Page = e.Request.URL
		}
		for _, h := range e.Request.Headers {
			if rec.Request.Headers == nil {
				rec.Request.Headers = map[string]string{}
			}
			rec.Request.Headers[h.Name] = h.Value
		}
		for _, c := range e.Request.Cookies {
			domain := c.Domain
			if domain == "" {
				domain = hostOf(e.Request.URL)
			}
			rec.Request.Cookies = append(rec.Request.Cookies, httpmodel.Cookie{
				Name: c.Name, Value: c.Value, Domain: domain, Path: c.Path,
			})
		}
		if pd := e.Request.PostData; pd != nil {
			rec.Request.BodyType = pd.MimeType
			if pd.Text != "" {
				rec.Request.Body = []byte(pd.Text)
			} else if len(pd.Params) > 0 {
				var sb strings.Builder
				for j, p := range pd.Params {
					if j > 0 {
						sb.WriteByte('&')
					}
					sb.WriteString(p.Name)
					sb.WriteByte('=')
					sb.WriteString(p.Value)
				}
				rec.Request.Body = []byte(sb.String())
				if rec.Request.BodyType == "" {
					rec.Request.BodyType = "application/x-www-form-urlencoded"
				}
			}
		}
		for _, h := range e.Response.Headers {
			if rec.Response.Headers == nil {
				rec.Response.Headers = map[string]string{}
			}
			rec.Response.Headers[h.Name] = h.Value
		}
		for _, c := range e.Response.Cookies {
			rec.Response.SetCookies = append(rec.Response.SetCookies, httpmodel.Cookie{
				Name: c.Name, Value: c.Value, Domain: c.Domain, Path: c.Path,
			})
		}
		if e.Initiator != nil && e.Initiator.URL != "" {
			rec.Request.Initiator = e.Initiator.URL
		}
		out = append(out, rec)
	}
	return out, nil
}

// guessType infers a resource type from the URL extension and body —
// HAR does not carry one.
func guessType(e *Entry) httpmodel.ResourceType {
	if e.Request.PostData != nil {
		return httpmodel.TypeXHR
	}
	u := e.Request.URL
	if i := strings.IndexAny(u, "?#"); i >= 0 {
		u = u[:i]
	}
	switch {
	case strings.HasSuffix(u, ".js"):
		return httpmodel.TypeScript
	case strings.HasSuffix(u, ".css"):
		return httpmodel.TypeStylesheet
	case strings.HasSuffix(u, ".png"), strings.HasSuffix(u, ".gif"),
		strings.HasSuffix(u, ".jpg"), strings.HasSuffix(u, ".jpeg"),
		strings.HasSuffix(u, ".webp"), strings.HasSuffix(u, ".svg"):
		return httpmodel.TypeImage
	case strings.HasSuffix(u, "/") || !strings.Contains(lastSegment(u), "."):
		return httpmodel.TypeDocument
	default:
		return httpmodel.TypeOther
	}
}

func lastSegment(u string) string {
	if i := strings.LastIndexByte(u, '/'); i >= 0 {
		return u[i+1:]
	}
	return u
}

func hostOf(rawURL string) string {
	r := httpmodel.Request{URL: rawURL}
	return r.Host()
}
