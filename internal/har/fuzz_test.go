package har

import (
	"strings"
	"testing"
)

// FuzzParse ensures arbitrary input never panics the HAR importer.
func FuzzParse(f *testing.F) {
	f.Add(sampleHAR)
	f.Add("{}")
	f.Add(`{"log":{"entries":[{}]}}`)
	f.Add(`{"log":{"entries":[{"request":{"method":"GET","url":"x"},"response":{}}]}}`)
	f.Fuzz(func(t *testing.T, doc string) {
		if len(doc) > 1<<14 {
			return
		}
		Parse(strings.NewReader(doc)) //nolint:errcheck
	})
}
