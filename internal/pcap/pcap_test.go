package pcap

import (
	"bufio"
	"bytes"
	"net/http"
	"strings"
	"testing"

	"piileak/internal/browser"
	"piileak/internal/crawler"
	"piileak/internal/httpmodel"
	"piileak/internal/httpwire"
	"piileak/internal/webgen"
)

func sampleRecord() httpmodel.Record {
	return httpmodel.Record{
		Seq:   1,
		Page:  "https://www.shop.example/",
		Phase: httpmodel.PhaseSignup,
		Request: httpmodel.Request{
			Method:  "GET",
			URL:     "https://ct.pinterest.com/v3/collect?pd=deadbeef&v=2",
			Headers: map[string]string{"Referer": "https://www.shop.example/"},
		},
		Response: httpmodel.Response{Status: 200},
	}
}

func TestWriteExchangeRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	pw := NewWriter(&buf)
	rec := sampleRecord()
	if err := pw.WriteExchange(&rec); err != nil {
		t.Fatal(err)
	}

	packets, err := Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// SYN, SYN-ACK, ACK, request, ACK, response, ACK, FIN, FIN, ACK.
	if len(packets) != 10 {
		t.Fatalf("packets = %d, want 10", len(packets))
	}
	if !packets[0].SYN() || packets[0].ACK() {
		t.Error("first packet is not a bare SYN")
	}
	if !packets[1].SYN() || !packets[1].ACK() {
		t.Error("second packet is not SYN/ACK")
	}
	if !packets[len(packets)-3].FIN() {
		t.Error("teardown missing")
	}

	// Timestamps advance monotonically.
	for i := 1; i < len(packets); i++ {
		if !packets[i].Time.After(packets[i-1].Time) {
			t.Fatalf("packet %d time did not advance", i)
		}
	}

	// Reassembled client stream equals the wire request; the stdlib
	// parses both directions.
	streams := Reassemble(packets)
	var clientStream, serverStream []byte
	for k, data := range streams {
		if k.DstPort == 80 {
			clientStream = data
		} else {
			serverStream = data
		}
	}
	wantReq, err := httpwire.Request(&rec.Request)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(clientStream, wantReq) {
		t.Errorf("client stream mismatch:\n%q\nwant\n%q", clientStream, wantReq)
	}
	if _, err := http.ReadRequest(bufio.NewReader(bytes.NewReader(clientStream))); err != nil {
		t.Errorf("reassembled request unparseable: %v", err)
	}
	if _, err := http.ReadResponse(bufio.NewReader(bytes.NewReader(serverStream)), nil); err != nil {
		t.Errorf("reassembled response unparseable: %v", err)
	}
}

func TestLargeBodySegmentation(t *testing.T) {
	rec := sampleRecord()
	rec.Request.Method = "POST"
	rec.Request.URL = "https://api.bluecore.com/events"
	rec.Request.Body = bytes.Repeat([]byte("x"), 4*mss+37)
	rec.Request.BodyType = "application/octet-stream"

	var buf bytes.Buffer
	pw := NewWriter(&buf)
	if err := pw.WriteExchange(&rec); err != nil {
		t.Fatal(err)
	}
	packets, err := Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// Payload must be MSS-bounded and sequence numbers contiguous.
	var prevEnd uint32
	started := false
	for i := range packets {
		p := &packets[i]
		if len(p.Payload) > mss {
			t.Fatalf("segment %d exceeds MSS: %d", i, len(p.Payload))
		}
		if p.DstPort == 80 && len(p.Payload) > 0 {
			if started && p.Seq != prevEnd {
				t.Fatalf("sequence gap: %d != %d", p.Seq, prevEnd)
			}
			prevEnd = p.Seq + uint32(len(p.Payload))
			started = true
		}
	}
	streams := Reassemble(packets)
	for k, data := range streams {
		if k.DstPort == 80 && !bytes.Contains(data, rec.Request.Body[:64]) {
			t.Error("reassembled request lost the body")
		}
	}
}

func TestServerIPDeterministicAndInBenchmarkRange(t *testing.T) {
	a := serverIPFor("ct.pinterest.com")
	b := serverIPFor("ct.pinterest.com")
	c := serverIPFor("www.facebook.com")
	if a != b {
		t.Error("server IP not deterministic")
	}
	if a == c {
		t.Error("distinct hosts share an IP (fnv collision in test set)")
	}
	for _, ip := range [][4]byte{a, c} {
		if ip[0] != 198 || ip[1] < 18 || ip[1] > 19 {
			t.Errorf("IP %v outside 198.18.0.0/15", ip)
		}
	}
}

func TestParseRejectsGarbage(t *testing.T) {
	if _, err := Parse(strings.NewReader("not a pcap")); err == nil {
		t.Error("garbage accepted")
	}
	// Corrupt a checksum: flip one payload byte.
	var buf bytes.Buffer
	pw := NewWriter(&buf)
	rec := sampleRecord()
	if err := pw.WriteExchange(&rec); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw[len(raw)-1] ^= 0xFF
	if _, err := Parse(bytes.NewReader(raw)); err == nil {
		t.Error("corrupted capture accepted (checksum not verified)")
	}
}

func TestExportCrawlDataset(t *testing.T) {
	eco := webgen.MustGenerate(webgen.SmallConfig(97))
	ds := crawler.CrawlSenders(eco, browser.Firefox88())

	var buf bytes.Buffer
	pw := NewWriter(&buf)
	total := 0
	for _, c := range ds.Crawls {
		if err := pw.WriteRecords(c.Records); err != nil {
			t.Fatal(err)
		}
		total += len(c.Records)
	}
	packets, err := Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// Ten packets per exchange minimum.
	if len(packets) < total*10 {
		t.Errorf("packets = %d for %d exchanges", len(packets), total)
	}
	// Every reassembled client stream parses as HTTP.
	n := 0
	for k, data := range Reassemble(packets) {
		if k.DstPort != 80 {
			continue
		}
		if _, err := http.ReadRequest(bufio.NewReader(bytes.NewReader(data))); err != nil {
			t.Fatalf("stream %v unparseable: %v", k, err)
		}
		n++
	}
	if n != total {
		t.Errorf("client streams = %d, want %d", n, total)
	}
}

func BenchmarkWriteExchange(b *testing.B) {
	rec := sampleRecord()
	var buf bytes.Buffer
	pw := NewWriter(&buf)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := pw.WriteExchange(&rec); err != nil {
			b.Fatal(err)
		}
	}
}
