package pcap

import (
	"encoding/binary"
	"fmt"
	"io"
	"time"
)

// A minimal pcap/Ethernet/IPv4/TCP decoder. It exists so the tests can
// round-trip the writer's output — validating checksums and stream
// contents the way an external tool would — and doubles as a reference
// for reading the exported captures programmatically.

// Packet is one decoded TCP/IPv4 frame.
type Packet struct {
	Time     time.Time
	SrcIP    [4]byte
	DstIP    [4]byte
	SrcPort  uint16
	DstPort  uint16
	Seq, Ack uint32
	Flags    byte
	Payload  []byte
}

// FIN/SYN/PSH/ACK helpers.
func (p *Packet) SYN() bool { return p.Flags&flagSYN != 0 }
func (p *Packet) FIN() bool { return p.Flags&flagFIN != 0 }
func (p *Packet) PSH() bool { return p.Flags&flagPSH != 0 }
func (p *Packet) ACK() bool { return p.Flags&flagACK != 0 }

// Parse decodes a classic pcap stream, verifying the IPv4 and TCP
// checksums of every frame.
func Parse(r io.Reader) ([]Packet, error) {
	var gh [24]byte
	if _, err := io.ReadFull(r, gh[:]); err != nil {
		return nil, fmt.Errorf("pcap: global header: %w", err)
	}
	if binary.LittleEndian.Uint32(gh[0:4]) != magicMicroseconds {
		return nil, fmt.Errorf("pcap: bad magic %#x", binary.LittleEndian.Uint32(gh[0:4]))
	}
	if lt := binary.LittleEndian.Uint32(gh[20:24]); lt != linkTypeEthernet {
		return nil, fmt.Errorf("pcap: unsupported link type %d", lt)
	}

	var packets []Packet
	for {
		var ph [16]byte
		if _, err := io.ReadFull(r, ph[:]); err != nil {
			if err == io.EOF {
				return packets, nil
			}
			return nil, fmt.Errorf("pcap: packet header: %w", err)
		}
		caplen := binary.LittleEndian.Uint32(ph[8:12])
		if caplen > snapLen {
			return nil, fmt.Errorf("pcap: capture length %d exceeds snaplen", caplen)
		}
		frame := make([]byte, caplen)
		if _, err := io.ReadFull(r, frame); err != nil {
			return nil, fmt.Errorf("pcap: truncated frame: %w", err)
		}
		p, err := decodeFrame(frame)
		if err != nil {
			return nil, err
		}
		p.Time = time.Unix(int64(binary.LittleEndian.Uint32(ph[0:4])),
			int64(binary.LittleEndian.Uint32(ph[4:8]))*1000)
		packets = append(packets, p)
	}
}

func decodeFrame(frame []byte) (Packet, error) {
	var p Packet
	if len(frame) < etherLen+ipHeaderLen+tcpHeaderLen {
		return p, fmt.Errorf("pcap: frame too short (%d bytes)", len(frame))
	}
	if et := binary.BigEndian.Uint16(frame[12:14]); et != etherTypeIPv4 {
		return p, fmt.Errorf("pcap: unexpected ethertype %#x", et)
	}
	ip := frame[etherLen:]
	if ip[0]>>4 != 4 || int(ip[0]&0xF)*4 != ipHeaderLen {
		return p, fmt.Errorf("pcap: unexpected IP header %#x", ip[0])
	}
	if ip[9] != ipProtoTCP {
		return p, fmt.Errorf("pcap: unexpected protocol %d", ip[9])
	}
	totalLen := int(binary.BigEndian.Uint16(ip[2:4]))
	if totalLen+etherLen != len(frame) {
		return p, fmt.Errorf("pcap: IP length %d does not match frame %d", totalLen, len(frame))
	}
	if checksum(ip[:ipHeaderLen], 0) != 0 {
		return p, fmt.Errorf("pcap: bad IPv4 checksum")
	}
	copy(p.SrcIP[:], ip[12:16])
	copy(p.DstIP[:], ip[16:20])

	tcp := ip[ipHeaderLen:totalLen]
	if len(tcp) < tcpHeaderLen {
		return p, fmt.Errorf("pcap: TCP header truncated")
	}
	// Verify the TCP checksum: recompute with the field zeroed.
	seg := make([]byte, len(tcp))
	copy(seg, tcp)
	want := binary.BigEndian.Uint16(seg[16:18])
	binary.BigEndian.PutUint16(seg[16:18], 0)
	if got := tcpChecksum(p.SrcIP, p.DstIP, seg); got != want {
		return p, fmt.Errorf("pcap: bad TCP checksum: got %#04x want %#04x", got, want)
	}

	p.SrcPort = binary.BigEndian.Uint16(tcp[0:2])
	p.DstPort = binary.BigEndian.Uint16(tcp[2:4])
	p.Seq = binary.BigEndian.Uint32(tcp[4:8])
	p.Ack = binary.BigEndian.Uint32(tcp[8:12])
	p.Flags = tcp[13]
	dataOff := int(tcp[12]>>4) * 4
	if dataOff < tcpHeaderLen || dataOff > len(tcp) {
		return p, fmt.Errorf("pcap: bad TCP data offset %d", dataOff)
	}
	p.Payload = tcp[dataOff:]
	return p, nil
}

// StreamKey identifies one direction of one connection.
type StreamKey struct {
	SrcIP   [4]byte
	DstIP   [4]byte
	SrcPort uint16
	DstPort uint16
}

// Reassemble concatenates payload bytes per direction, in sequence
// order (the writer emits in-order segments).
func Reassemble(packets []Packet) map[StreamKey][]byte {
	streams := map[StreamKey][]byte{}
	for i := range packets {
		p := &packets[i]
		if len(p.Payload) == 0 {
			continue
		}
		k := StreamKey{p.SrcIP, p.DstIP, p.SrcPort, p.DstPort}
		streams[k] = append(streams[k], p.Payload...)
	}
	return streams
}
