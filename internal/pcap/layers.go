package pcap

import "encoding/binary"

// Link-layer synthesis: Ethernet II + IPv4 + TCP with correct lengths,
// flags and checksums, so tcpdump/Wireshark reassemble the streams.

const (
	etherTypeIPv4 = 0x0800
	ipProtoTCP    = 6
	ipHeaderLen   = 20
	tcpHeaderLen  = 20
	etherLen      = 14
	// mss bounds TCP payload per segment (standard Ethernet).
	mss = 1460
)

// TCP flag bits.
const (
	flagFIN = 0x01
	flagSYN = 0x02
	flagRST = 0x04
	flagPSH = 0x08
	flagACK = 0x10
)

var (
	clientMAC = [6]byte{0x02, 0x50, 0x49, 0x49, 0x00, 0x01} // locally administered
	serverMAC = [6]byte{0x02, 0x50, 0x49, 0x49, 0x00, 0x02}
)

// buildFrame assembles one Ethernet/IPv4/TCP frame.
func buildFrame(srcIP, dstIP [4]byte, srcMAC, dstMAC [6]byte,
	srcPort, dstPort uint16, seq, ack uint32, flags byte, payload []byte) []byte {

	total := etherLen + ipHeaderLen + tcpHeaderLen + len(payload)
	f := make([]byte, total)

	// Ethernet II.
	copy(f[0:6], dstMAC[:])
	copy(f[6:12], srcMAC[:])
	binary.BigEndian.PutUint16(f[12:14], etherTypeIPv4)

	// IPv4.
	ip := f[etherLen : etherLen+ipHeaderLen]
	ip[0] = 0x45 // version 4, IHL 5
	binary.BigEndian.PutUint16(ip[2:4], uint16(ipHeaderLen+tcpHeaderLen+len(payload)))
	binary.BigEndian.PutUint16(ip[4:6], 0) // identification
	ip[6] = 0x40                           // don't fragment
	ip[8] = 64                             // TTL
	ip[9] = ipProtoTCP
	copy(ip[12:16], srcIP[:])
	copy(ip[16:20], dstIP[:])
	binary.BigEndian.PutUint16(ip[10:12], checksum(ip, 0))

	// TCP.
	tcp := f[etherLen+ipHeaderLen:]
	binary.BigEndian.PutUint16(tcp[0:2], srcPort)
	binary.BigEndian.PutUint16(tcp[2:4], dstPort)
	binary.BigEndian.PutUint32(tcp[4:8], seq)
	binary.BigEndian.PutUint32(tcp[8:12], ack)
	tcp[12] = (tcpHeaderLen / 4) << 4 // data offset
	tcp[13] = flags
	binary.BigEndian.PutUint16(tcp[14:16], 65535) // window
	copy(tcp[tcpHeaderLen:], payload)
	binary.BigEndian.PutUint16(tcp[16:18], tcpChecksum(srcIP, dstIP, tcp))

	return f
}

// checksum is the ones-complement sum over data with an initial value.
func checksum(data []byte, initial uint32) uint16 {
	sum := initial
	for i := 0; i+1 < len(data); i += 2 {
		sum += uint32(binary.BigEndian.Uint16(data[i : i+2]))
	}
	if len(data)%2 == 1 {
		sum += uint32(data[len(data)-1]) << 8
	}
	for sum>>16 != 0 {
		sum = sum&0xffff + sum>>16
	}
	return ^uint16(sum)
}

// tcpChecksum computes the TCP checksum over the pseudo-header plus
// segment (checksum field zeroed by the caller's layout).
func tcpChecksum(srcIP, dstIP [4]byte, segment []byte) uint16 {
	var pseudo [12]byte
	copy(pseudo[0:4], srcIP[:])
	copy(pseudo[4:8], dstIP[:])
	pseudo[9] = ipProtoTCP
	binary.BigEndian.PutUint16(pseudo[10:12], uint16(len(segment)))

	sum := uint32(0)
	for i := 0; i < len(pseudo); i += 2 {
		sum += uint32(binary.BigEndian.Uint16(pseudo[i : i+2]))
	}
	// The checksum field (bytes 16..18) is zero at this point.
	return checksum(segment, sum)
}
