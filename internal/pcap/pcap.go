// Package pcap exports the study's captured traffic as a classic
// libpcap file: each HTTP exchange becomes a complete synthesized TCP
// connection (handshake, MSS-segmented request and response, teardown)
// over Ethernet/IPv4, with correct lengths and checksums, so the
// synthetic crawl opens in Wireshark or tcpdump for inspection with
// standard tooling.
//
// The simulator's logical HTTPS exchanges are exported as the plaintext
// HTTP they carry (as if captured after TLS termination), on port 80 —
// documented in DESIGN.md alongside the other substitutions.
package pcap

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"io"
	"time"

	"piileak/internal/httpmodel"
	"piileak/internal/httpwire"
)

// Classic pcap constants.
const (
	magicMicroseconds = 0xA1B2C3D4
	versionMajor      = 2
	versionMinor      = 4
	linkTypeEthernet  = 1
	snapLen           = 262144
)

// baseTime anchors packet timestamps at the study's collection period
// (May 2021); fixed for determinism.
var baseTime = time.Date(2021, time.May, 10, 12, 0, 0, 0, time.UTC)

// Writer streams a pcap file.
type Writer struct {
	w    io.Writer
	tick time.Duration // advances per packet
	now  time.Time
	// nextPort hands out client ephemeral ports.
	nextPort uint16
	wrote    bool
}

// NewWriter creates a pcap writer; the global header is emitted on the
// first packet.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: w, now: baseTime, nextPort: 40000, tick: 150 * time.Microsecond}
}

func (pw *Writer) header() error {
	var h [24]byte
	binary.LittleEndian.PutUint32(h[0:4], magicMicroseconds)
	binary.LittleEndian.PutUint16(h[4:6], versionMajor)
	binary.LittleEndian.PutUint16(h[6:8], versionMinor)
	// thiszone, sigfigs: zero.
	binary.LittleEndian.PutUint32(h[16:20], snapLen)
	binary.LittleEndian.PutUint32(h[20:24], linkTypeEthernet)
	_, err := pw.w.Write(h[:])
	return err
}

// writePacket emits one frame with the next timestamp.
func (pw *Writer) writePacket(frame []byte) error {
	if !pw.wrote {
		if err := pw.header(); err != nil {
			return err
		}
		pw.wrote = true
	}
	pw.now = pw.now.Add(pw.tick)
	var h [16]byte
	binary.LittleEndian.PutUint32(h[0:4], uint32(pw.now.Unix()))
	binary.LittleEndian.PutUint32(h[4:8], uint32(pw.now.Nanosecond()/1000))
	binary.LittleEndian.PutUint32(h[8:12], uint32(len(frame)))
	binary.LittleEndian.PutUint32(h[12:16], uint32(len(frame)))
	if _, err := pw.w.Write(h[:]); err != nil {
		return err
	}
	_, err := pw.w.Write(frame)
	return err
}

var clientIP = [4]byte{10, 0, 0, 2}

// serverIPFor maps a host deterministically into 198.18.0.0/15 (the
// benchmarking range, guaranteed not to collide with real addresses).
func serverIPFor(host string) [4]byte {
	h := fnv.New32a()
	h.Write([]byte(host))
	v := h.Sum32()
	return [4]byte{198, 18 + byte(v>>16&0x01), byte(v >> 8), byte(v)}
}

// WriteExchange synthesizes one full TCP connection carrying the
// record's HTTP exchange.
func (pw *Writer) WriteExchange(rec *httpmodel.Record) error {
	reqBytes, err := httpwire.Request(&rec.Request)
	if err != nil {
		return fmt.Errorf("pcap: record %d: %w", rec.Seq, err)
	}
	respBytes := httpwire.Response(&rec.Response)

	host := rec.Request.Host()
	srvIP := serverIPFor(host)
	srcPort := pw.nextPort
	pw.nextPort++
	if pw.nextPort < 40000 {
		pw.nextPort = 40000
	}
	const dstPort = 80

	cSeq := uint32(1000)
	sSeq := uint32(2000)

	send := func(fromClient bool, seq, ack uint32, flags byte, payload []byte) error {
		var frame []byte
		if fromClient {
			frame = buildFrame(clientIP, srvIP, clientMAC, serverMAC, srcPort, dstPort, seq, ack, flags, payload)
		} else {
			frame = buildFrame(srvIP, clientIP, serverMAC, clientMAC, dstPort, srcPort, seq, ack, flags, payload)
		}
		return pw.writePacket(frame)
	}

	// Handshake.
	if err := send(true, cSeq, 0, flagSYN, nil); err != nil {
		return err
	}
	if err := send(false, sSeq, cSeq+1, flagSYN|flagACK, nil); err != nil {
		return err
	}
	cSeq++
	sSeq++
	if err := send(true, cSeq, sSeq, flagACK, nil); err != nil {
		return err
	}

	// Request, MSS-segmented.
	for off := 0; off < len(reqBytes); off += mss {
		end := off + mss
		if end > len(reqBytes) {
			end = len(reqBytes)
		}
		flags := byte(flagACK)
		if end == len(reqBytes) {
			flags |= flagPSH
		}
		if err := send(true, cSeq, sSeq, flags, reqBytes[off:end]); err != nil {
			return err
		}
		cSeq += uint32(end - off)
	}
	if err := send(false, sSeq, cSeq, flagACK, nil); err != nil {
		return err
	}

	// Response.
	for off := 0; off < len(respBytes); off += mss {
		end := off + mss
		if end > len(respBytes) {
			end = len(respBytes)
		}
		flags := byte(flagACK)
		if end == len(respBytes) {
			flags |= flagPSH
		}
		if err := send(false, sSeq, cSeq, flags, respBytes[off:end]); err != nil {
			return err
		}
		sSeq += uint32(end - off)
	}
	if err := send(true, cSeq, sSeq, flagACK, nil); err != nil {
		return err
	}

	// Teardown.
	if err := send(true, cSeq, sSeq, flagFIN|flagACK, nil); err != nil {
		return err
	}
	cSeq++
	if err := send(false, sSeq, cSeq, flagFIN|flagACK, nil); err != nil {
		return err
	}
	sSeq++
	return send(true, cSeq, sSeq, flagACK, nil)
}

// WriteRecords exports a record sequence.
func (pw *Writer) WriteRecords(records []httpmodel.Record) error {
	for i := range records {
		if err := pw.WriteExchange(&records[i]); err != nil {
			return err
		}
	}
	return nil
}
