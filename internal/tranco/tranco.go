// Package tranco generates the deterministic ranked site list standing in
// for the real Tranco top list plus the FortiGuard category feed (§3.2).
//
// The real study took the Tranco top 10,000, classified sites with
// FortiGuard Web Filtering, and kept the 404 shopping sites. This
// substitute reproduces that selection pipeline over synthetic domains:
// ranks, weighted TLDs, category labels with a fixed shopping quota, and
// rank-ordered selection.
package tranco

import (
	"fmt"
	"math/rand/v2"
)

// Entry is one ranked, categorized site.
type Entry struct {
	Rank     int    `json:"rank"`
	Domain   string `json:"domain"`
	Category string `json:"category"`
}

// List is a generated ranking.
type List struct {
	Entries []Entry
}

// Categories in the synthetic FortiGuard-style feed.
var Categories = []string{
	"shopping", "news", "social", "technology", "finance",
	"entertainment", "education", "travel", "health", "sports",
	"business", "reference",
}

// CategoryShopping is the category the study selects (§3.2).
const CategoryShopping = "shopping"

var namePrefixes = []string{
	"urban", "nova", "prime", "zen", "blue", "swift", "lumen", "terra",
	"alto", "vista", "echo", "polar", "cedar", "ember", "flux", "haven",
	"iris", "koi", "lotus", "mira", "nimbus", "opal", "pixel", "quartz",
	"rivet", "sol", "tidal", "umber", "vela", "willow", "xenon", "yonder",
	"zephyr", "aster", "brio", "coral", "drift", "eden", "fable", "grove",
}

var nameSuffixes = []string{
	"market", "store", "mart", "goods", "hub", "base", "port", "works",
	"lane", "cart", "deal", "trade", "supply", "forge", "nest", "loop",
	"press", "wire", "beam", "stack", "dock", "field", "point", "crest",
	"mill", "path", "gate", "yard", "bay", "ridge", "peak", "cove",
	"bloom", "craft", "den", "edge", "flow", "glen", "isle", "junction",
}

var tlds = []string{
	"com", "com", "com", "com", "com", "net", "org", "shop", "store",
	"co.jp", "co.uk", "com.au", "io", "co", "jp", "de", "fr",
}

// Generate builds a deterministic top-n list for the given seed. Exactly
// shoppingQuota entries in the list carry the shopping category, spread
// across ranks the way a real category feed would be (rank-independent).
func Generate(seed uint64, n, shoppingQuota int) *List {
	if shoppingQuota > n {
		panic("tranco: shopping quota exceeds list size")
	}
	rng := rand.New(rand.NewPCG(seed, 0x7261636f)) // "raco"

	entries := make([]Entry, n)
	seen := make(map[string]bool, n)
	for i := range entries {
		var domain string
		for attempt := 0; ; attempt++ {
			p := namePrefixes[rng.IntN(len(namePrefixes))]
			s := nameSuffixes[rng.IntN(len(nameSuffixes))]
			tld := tlds[rng.IntN(len(tlds))]
			domain = p + s + "." + tld
			if attempt > 2 {
				domain = fmt.Sprintf("%s%s%d.%s", p, s, rng.IntN(90)+10, tld)
			}
			if !seen[domain] {
				break
			}
		}
		seen[domain] = true
		entries[i] = Entry{Rank: i + 1, Domain: domain}
	}

	// Category assignment: pick shoppingQuota distinct positions for
	// shopping, everything else gets a weighted non-shopping category.
	perm := rng.Perm(n)
	for _, idx := range perm[:shoppingQuota] {
		entries[idx].Category = CategoryShopping
	}
	others := Categories[1:]
	for i := range entries {
		if entries[i].Category == "" {
			entries[i].Category = others[rng.IntN(len(others))]
		}
	}
	return &List{Entries: entries}
}

// tailSalt keys the per-rank PCG streams of the long tail, independent
// of the head list's stream so extending the universe can never perturb
// the generated head.
const tailSalt = 0x7461696c // "tail"

// TailShoppingModulus spaces the shopping category through the long
// tail: tail ranks divisible by it are shopping, everything else draws
// a weighted non-shopping category. ~1% keeps background shopping
// present at every scale without making million-site universes
// crawl-heavy.
const TailShoppingModulus = 97

// TailEntry derives the ranked entry for one long-tail rank as a pure
// function of (seed, rank): an independent PCG stream per rank, so the
// same entry comes back byte-identical regardless of access order,
// subsetting, or which shard asks. Tail domains embed a "-r<rank>"
// marker; head domains are hyphen-free, so the two namespaces cannot
// collide and tail domains are unique by construction.
func TailEntry(seed uint64, rank int) Entry {
	rng := rand.New(rand.NewPCG(seed, tailSalt^uint64(rank)))
	p := namePrefixes[rng.IntN(len(namePrefixes))]
	s := nameSuffixes[rng.IntN(len(nameSuffixes))]
	tld := tlds[rng.IntN(len(tlds))]
	category := Categories[1:][rng.IntN(len(Categories)-1)]
	if rank%TailShoppingModulus == 0 {
		category = CategoryShopping
	}
	return Entry{
		Rank:     rank,
		Domain:   fmt.Sprintf("%s%s-r%d.%s", p, s, rank, tld),
		Category: category,
	}
}

// Shopping returns the shopping-category entries in rank order.
func (l *List) Shopping() []Entry {
	var out []Entry
	for _, e := range l.Entries {
		if e.Category == CategoryShopping {
			out = append(out, e)
		}
	}
	return out
}

// Category returns the category of a domain, or "" if unknown.
func (l *List) Category(domain string) string {
	for _, e := range l.Entries {
		if e.Domain == domain {
			return e.Category
		}
	}
	return ""
}

// Len returns the list size.
func (l *List) Len() int { return len(l.Entries) }
