package tranco

import (
	"reflect"
	"strings"
	"testing"
)

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(42, 1000, 40)
	b := Generate(42, 1000, 40)
	if !reflect.DeepEqual(a, b) {
		t.Error("same seed produced different lists")
	}
	c := Generate(43, 1000, 40)
	if reflect.DeepEqual(a, c) {
		t.Error("different seeds produced identical lists")
	}
}

func TestGenerateSizeAndRanks(t *testing.T) {
	l := Generate(1, 500, 20)
	if l.Len() != 500 {
		t.Fatalf("Len = %d", l.Len())
	}
	for i, e := range l.Entries {
		if e.Rank != i+1 {
			t.Fatalf("entry %d has rank %d", i, e.Rank)
		}
		if e.Domain == "" || !strings.Contains(e.Domain, ".") {
			t.Fatalf("entry %d has bad domain %q", i, e.Domain)
		}
		if e.Category == "" {
			t.Fatalf("entry %d has no category", i)
		}
	}
}

func TestGenerateUniqueDomains(t *testing.T) {
	l := Generate(7, 10000, 404)
	seen := map[string]bool{}
	for _, e := range l.Entries {
		if seen[e.Domain] {
			t.Fatalf("duplicate domain %q", e.Domain)
		}
		seen[e.Domain] = true
	}
}

func TestShoppingQuotaExact(t *testing.T) {
	l := Generate(7, 10000, 404)
	shopping := l.Shopping()
	if len(shopping) != 404 {
		t.Fatalf("shopping sites = %d, want 404", len(shopping))
	}
	// Rank order preserved.
	for i := 1; i < len(shopping); i++ {
		if shopping[i].Rank <= shopping[i-1].Rank {
			t.Fatal("shopping entries not in rank order")
		}
	}
}

func TestCategoryLookup(t *testing.T) {
	l := Generate(3, 100, 5)
	e := l.Entries[0]
	if got := l.Category(e.Domain); got != e.Category {
		t.Errorf("Category(%q) = %q, want %q", e.Domain, got, e.Category)
	}
	if got := l.Category("not-in-list.example"); got != "" {
		t.Errorf("Category(unknown) = %q", got)
	}
}

func TestQuotaPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("oversized quota did not panic")
		}
	}()
	Generate(1, 10, 11)
}
