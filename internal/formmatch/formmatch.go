// Package formmatch implements the form-field matching heuristics an
// automated crawler needs to fill sign-up forms (the "effort ... to
// match all complicated fields with the right information" of the
// paper's §3.2, after Chatzimpyrros et al.). A human operator reads
// labels and always fills the right value; automation matches input
// names against keyword heuristics and fails on exotic markup — one of
// the reasons the study collected data manually.
package formmatch

import (
	"strings"

	"piileak/internal/pii"
)

// Matcher maps form-input names to PII types via keyword heuristics.
type Matcher struct {
	// rules maps a PII type to lowercase substrings that identify it.
	rules []rule
}

type rule struct {
	t        pii.Type
	keywords []string
}

// NewMatcher returns the default heuristics, modeled on what automated
// form-filling studies use: common English/Latin field-name fragments.
func NewMatcher() *Matcher {
	return &Matcher{rules: []rule{
		// Order matters: "username" must win over "name", and e-mail
		// fields often contain "mail" with qualifiers.
		{pii.TypeUsername, []string{"username", "user_name", "login_id", "nickname", "userid"}},
		{pii.TypeEmail, []string{"email", "e-mail", "e_mail", "mail"}},
		{pii.TypePhone, []string{"phone", "tel", "mobile", "msisdn"}},
		{pii.TypeDOB, []string{"dob", "birth", "bday"}},
		{pii.TypeGender, []string{"gender", "sex"}},
		{pii.TypeJob, []string{"job", "occupation", "profession", "title"}},
		{pii.TypeAddress, []string{"address", "street", "postal", "zip", "addr"}},
		{pii.TypeName, []string{"name", "fullname", "first", "last", "fname", "lname"}},
	}}
}

// Match classifies one input name, reporting false when no heuristic
// fires — the automated crawler then cannot fill the field.
func (m *Matcher) Match(inputName string) (pii.Type, bool) {
	n := strings.ToLower(strings.TrimSpace(inputName))
	if n == "" {
		return "", false
	}
	for _, r := range m.rules {
		for _, kw := range r.keywords {
			if strings.Contains(n, kw) {
				return r.t, true
			}
		}
	}
	return "", false
}

// Fill resolves a persona value for one input name.
func (m *Matcher) Fill(p pii.Persona, inputName string) (string, bool) {
	t, ok := m.Match(inputName)
	if !ok {
		return "", false
	}
	switch t {
	case pii.TypeName:
		return p.FullName(), true
	default:
		v := p.FieldValue(t)
		return v, v != ""
	}
}

// CanComplete reports whether every required input is matchable — the
// automated crawler's precondition for submitting a form.
func (m *Matcher) CanComplete(requiredInputs []string) bool {
	for _, name := range requiredInputs {
		if isCredentialField(name) {
			continue // passwords/consent are fillable without PII
		}
		if _, ok := m.Match(name); !ok {
			return false
		}
	}
	return len(requiredInputs) > 0
}

func isCredentialField(name string) bool {
	n := strings.ToLower(name)
	return strings.Contains(n, "pass") || strings.Contains(n, "pwd") ||
		strings.Contains(n, "consent") || strings.Contains(n, "terms") ||
		strings.Contains(n, "captcha")
}
