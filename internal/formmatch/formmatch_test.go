package formmatch

import (
	"testing"

	"piileak/internal/pii"
)

func TestMatchCommonNames(t *testing.T) {
	m := NewMatcher()
	cases := map[string]pii.Type{
		"email":          pii.TypeEmail,
		"user_email":     pii.TypeEmail,
		"loginEmail":     pii.TypeEmail,
		"E-Mail":         pii.TypeEmail,
		"name":           pii.TypeName,
		"firstName":      pii.TypeName,
		"lname":          pii.TypeName,
		"username":       pii.TypeUsername,
		"nickname":       pii.TypeUsername,
		"phone_number":   pii.TypePhone,
		"tel":            pii.TypePhone,
		"dob":            pii.TypeDOB,
		"birth_date":     pii.TypeDOB,
		"gender":         pii.TypeGender,
		"job_title":      pii.TypeJob,
		"street_address": pii.TypeAddress,
		"zip":            pii.TypeAddress,
	}
	for name, want := range cases {
		got, ok := m.Match(name)
		if !ok || got != want {
			t.Errorf("Match(%q) = %q, %v; want %q", name, got, ok, want)
		}
	}
}

func TestMatchPriorities(t *testing.T) {
	m := NewMatcher()
	// "username" contains "name" but must classify as username.
	if got, _ := m.Match("username"); got != pii.TypeUsername {
		t.Errorf("username matched as %q", got)
	}
}

func TestMatchExoticNamesFail(t *testing.T) {
	m := NewMatcher()
	for _, name := range []string{"field_a7", "f2", "contact_value", "input_93", ""} {
		if got, ok := m.Match(name); ok {
			t.Errorf("Match(%q) unexpectedly matched %q", name, got)
		}
	}
}

func TestFill(t *testing.T) {
	m := NewMatcher()
	p := pii.Default()
	v, ok := m.Fill(p, "customer_email")
	if !ok || v != p.Email {
		t.Errorf("Fill(email) = %q, %v", v, ok)
	}
	v, ok = m.Fill(p, "full_name")
	if !ok || v != p.FullName() {
		t.Errorf("Fill(name) = %q, %v", v, ok)
	}
	if _, ok := m.Fill(p, "field_xx"); ok {
		t.Error("Fill matched an exotic field")
	}
}

func TestCanComplete(t *testing.T) {
	m := NewMatcher()
	if !m.CanComplete([]string{"email", "name", "password", "terms_accept"}) {
		t.Error("standard form not completable")
	}
	if m.CanComplete([]string{"email", "field_a7"}) {
		t.Error("exotic form reported completable")
	}
	if m.CanComplete(nil) {
		t.Error("empty form reported completable")
	}
}
