package report

import (
	"strings"
	"testing"

	"piileak/internal/core"
	"piileak/internal/countermeasure"
	"piileak/internal/policy"
	"piileak/internal/tracking"
)

func TestTableAlignment(t *testing.T) {
	out := Table([]string{"a", "long-header"}, [][]string{
		{"row-one-cell", "x"},
		{"r2", "y"},
	})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d: %q", len(lines), out)
	}
	// All rows align to the same column for the second field.
	col := strings.Index(lines[0], "long-header")
	if !strings.HasPrefix(lines[2][col:], "x") {
		t.Errorf("misaligned table:\n%s", out)
	}
	if !strings.Contains(lines[1], "---") {
		t.Errorf("missing separator:\n%s", out)
	}
}

func TestCountPct(t *testing.T) {
	if got := CountPct(13, 130); got != "13/10.0%" {
		t.Errorf("CountPct = %q", got)
	}
	if got := CountPct(5, 0); got != "5/-" {
		t.Errorf("CountPct zero total = %q", got)
	}
}

func TestHeadline(t *testing.T) {
	out := Headline(core.Headline{
		TotalSites: 307, Senders: 130, Receivers: 100, LeakRate: 42.3,
		LeakyRequests: 1522, MeanReceivers: 2.97, SendersAtLeast3: 60,
		SendersAtLeast3Pc: 46.15, MaxReceivers: 16, MaxReceiverSite: "shop.example",
	})
	for _, want := range []string{"307", "130", "42.3%", "1522", "2.97", "16 (shop.example)"} {
		if !strings.Contains(out, want) {
			t.Errorf("headline missing %q:\n%s", want, out)
		}
	}
}

func TestBreakdown(t *testing.T) {
	out := Breakdown("Table 1a", []core.BreakdownRow{
		{Label: "uri", Senders: 118, Receivers: 78},
	}, 130, 100)
	if !strings.Contains(out, "118/90.8%") || !strings.Contains(out, "78/78.0%") {
		t.Errorf("breakdown:\n%s", out)
	}
}

func TestFigure2Annotations(t *testing.T) {
	out := Figure2([]core.ReceiverRank{
		{Receiver: "facebook.com", Senders: 78, SenderPct: 60},
		{Receiver: "doubleclick.net", Senders: 18, SenderPct: 13.8},
		{Receiver: "omtrdc.net", Senders: 7, SenderPct: 5.4, Cloaked: true},
	})
	if !strings.Contains(out, "[Google]") {
		t.Errorf("brand annotation missing:\n%s", out)
	}
	if !strings.Contains(out, "omtrdc.net (cname)") {
		t.Errorf("cname annotation missing:\n%s", out)
	}
	if !strings.Contains(out, "####") {
		t.Errorf("bars missing:\n%s", out)
	}
}

func TestTable2Rendering(t *testing.T) {
	out := Table2([]tracking.Provider{
		{
			Receiver: "facebook.com", Senders: 74,
			Rows: []tracking.Row{
				{Senders: 72, Methods: []string{"Payload", "URI"}, Encoding: "sha256", Params: []string{"udff[em]"}},
				{Senders: 2, Methods: []string{"URI"}, Encoding: "md5", Params: []string{"ud[em]"}},
			},
		},
	})
	if !strings.Contains(out, "facebook.com") || !strings.Contains(out, "udff[em]") {
		t.Errorf("table 2:\n%s", out)
	}
	// The second encoding row leaves the receiver column empty.
	lines := strings.Split(out, "\n")
	foundContinuation := false
	for _, l := range lines {
		if strings.Contains(l, "ud[em]") && strings.HasPrefix(l, " ") {
			foundContinuation = true
		}
	}
	if !foundContinuation {
		t.Errorf("continuation row not blanked:\n%s", out)
	}
}

func TestTable3Rendering(t *testing.T) {
	out := Table3(policy.Table3{NotSpecific: 102, Specific: 9, NoDescription: 15, ExplicitlyNot: 4, Total: 130})
	for _, want := range []string{"102/78.5%", "9/6.9%", "15/11.5%", "4/3.1%", "130/100%"} {
		if !strings.Contains(out, want) {
			t.Errorf("table 3 missing %q:\n%s", want, out)
		}
	}
}

func TestBrowsersRendering(t *testing.T) {
	out := Browsers([]countermeasure.BrowserResult{
		{Browser: "Firefox 88", Senders: 130, Receivers: 100},
		{Browser: "Brave 1.29.81", Senders: 9, Receivers: 8,
			SenderReductionPct: 93.1, ReceiverReductionPct: 92,
			SignupFailures: 1, MissedReceivers: []string{"a", "b"}},
	})
	if !strings.Contains(out, "93.1%") || !strings.Contains(out, "2 missed") {
		t.Errorf("browsers table:\n%s", out)
	}
}

func TestTable4Rendering(t *testing.T) {
	out := Table4(&countermeasure.Table4{
		Rows: []countermeasure.Table4Row{{
			Metric: "senders", Method: "total",
			EasyList:    countermeasure.Cell{Count: 1, Total: 130},
			EasyPrivacy: countermeasure.Cell{Count: 95, Total: 130},
			Combined:    countermeasure.Cell{Count: 102, Total: 130},
		}},
		MissedTrackers: []string{"custora.com", "zendesk.com"},
	})
	for _, want := range []string{"95/73.1%", "102/78.5%", "custora.com, zendesk.com"} {
		if !strings.Contains(out, want) {
			t.Errorf("table 4 missing %q:\n%s", want, out)
		}
	}
}

func TestComparison(t *testing.T) {
	out := Comparison("cmp", []ComparisonRow{{Metric: "senders", Paper: "130", Measured: "130"}})
	if !strings.Contains(out, "paper") || !strings.Contains(out, "measured") {
		t.Errorf("comparison:\n%s", out)
	}
}

func TestSortedKeys(t *testing.T) {
	got := SortedKeys(map[string]int{"b": 1, "a": 2, "c": 3})
	if strings.Join(got, "") != "abc" {
		t.Errorf("SortedKeys = %v", got)
	}
}

func TestFigure2CSV(t *testing.T) {
	out := Figure2CSV([]core.ReceiverRank{
		{Receiver: "facebook.com", Senders: 74, SenderPct: 56.92},
		{Receiver: "omtrdc.net", Senders: 7, SenderPct: 5.38, Cloaked: true},
	})
	if !strings.HasPrefix(out, "receiver,senders,sender_pct,brand,cloaked\n") {
		t.Errorf("header missing:\n%s", out)
	}
	if !strings.Contains(out, "facebook.com,74,56.92,,false") {
		t.Errorf("facebook row missing:\n%s", out)
	}
	if !strings.Contains(out, "omtrdc.net,7,5.38,Adobe,true") {
		t.Errorf("adobe row missing:\n%s", out)
	}
}
