// Package report renders the study's tables and figures as aligned text,
// in the shape the paper prints them, plus paper-vs-measured comparison
// blocks for EXPERIMENTS.md.
package report

import (
	"fmt"
	"sort"
	"strings"

	"piileak/internal/core"
	"piileak/internal/countermeasure"
	"piileak/internal/policy"
	"piileak/internal/tracking"
)

// Table renders an aligned text table.
func Table(headers []string, rows [][]string) string {
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteString("\n")
	}
	writeRow(headers)
	sep := make([]string, len(headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range rows {
		writeRow(row)
	}
	return b.String()
}

// CountPct renders "n/p%" the way the paper's tables do.
func CountPct(n, total int) string {
	if total == 0 {
		return fmt.Sprintf("%d/-", n)
	}
	return fmt.Sprintf("%d/%.1f%%", n, 100*float64(n)/float64(total))
}

// Headline renders the §4.2 opening statistics.
func Headline(h core.Headline) string {
	var b strings.Builder
	fmt.Fprintf(&b, "crawled sites:            %d\n", h.TotalSites)
	fmt.Fprintf(&b, "first-party senders:      %d (%.1f%%)\n", h.Senders, h.LeakRate)
	fmt.Fprintf(&b, "third-party receivers:    %d\n", h.Receivers)
	fmt.Fprintf(&b, "requests with leaked PII: %d\n", h.LeakyRequests)
	fmt.Fprintf(&b, "receivers per sender:     %.2f mean, max %d (%s)\n",
		h.MeanReceivers, h.MaxReceivers, h.MaxReceiverSite)
	fmt.Fprintf(&b, "senders with ≥3 receivers: %d (%.2f%%)\n", h.SendersAtLeast3, h.SendersAtLeast3Pc)
	return b.String()
}

// Breakdown renders one Table 1 panel.
func Breakdown(title string, rows []core.BreakdownRow, senderTotal, receiverTotal int) string {
	out := make([][]string, 0, len(rows))
	for _, r := range rows {
		out = append(out, []string{
			r.Label,
			CountPct(r.Senders, senderTotal),
			CountPct(r.Receivers, receiverTotal),
		})
	}
	return title + "\n" + Table([]string{"category", "# of senders", "# of receivers"}, out)
}

// brandOf maps receiver domains to organisations for the Figure 2
// annotation (Google and Adobe receive through multiple domains).
var brandOf = map[string]string{
	"google-analytics.com":  "Google",
	"doubleclick.net":       "Google",
	"googlesyndication.com": "Google",
	"demdex.net":            "Adobe",
	"omtrdc.net":            "Adobe",
	"bing.com":              "Microsoft",
	"clarity.ms":            "Microsoft",
}

// Figure2 renders the top receivers as a text bar chart.
func Figure2(ranks []core.ReceiverRank) string {
	var b strings.Builder
	b.WriteString("Figure 2: top third-party receiver domains (% of senders)\n")
	for _, r := range ranks {
		name := r.Receiver
		if r.Cloaked {
			name += " (cname)"
		}
		if brand := brandOf[r.Receiver]; brand != "" {
			name += " [" + brand + "]"
		}
		bar := strings.Repeat("#", int(r.SenderPct/2+0.5))
		fmt.Fprintf(&b, "%-36s %5.1f%% %-3d %s\n", name, r.SenderPct, r.Senders, bar)
	}
	return b.String()
}

// Table2 renders the tracking-provider census.
func Table2(trackers []tracking.Provider) string {
	var rows [][]string
	for i := range trackers {
		p := &trackers[i]
		for j, row := range p.Rows {
			name := ""
			if j == 0 {
				name = p.Display()
			}
			rows = append(rows, []string{
				name,
				fmt.Sprintf("%d", row.Senders),
				strings.Join(row.Methods, "/"),
				row.Encoding,
				strings.Join(row.Params, "/"),
			})
		}
	}
	return "Table 2: persistent-tracking providers\n" +
		Table([]string{"receiver", "# senders", "method", "encoding", "trackid parameter"}, rows)
}

// Table3 renders the privacy-policy census.
func Table3(t policy.Table3) string {
	var rows [][]string
	for _, r := range t.Rows() {
		rows = append(rows, []string{r.Label, fmt.Sprintf("%d/%.1f%%", r.Count, r.Pct)})
	}
	rows = append(rows, []string{"Total", fmt.Sprintf("%d/100%%", t.Total)})
	return "Table 3: privacy policy disclosures\n" +
		Table([]string{"disclosure", "number/percentage"}, rows)
}

// Browsers renders the §7.1 evaluation.
func Browsers(results []countermeasure.BrowserResult) string {
	var rows [][]string
	for _, r := range results {
		missed := ""
		if len(r.MissedReceivers) > 0 {
			missed = fmt.Sprintf("%d missed", len(r.MissedReceivers))
		}
		rows = append(rows, []string{
			r.Browser,
			fmt.Sprintf("%d", r.Senders),
			fmt.Sprintf("%d", r.Receivers),
			fmt.Sprintf("%.1f%%", r.SenderReductionPct),
			fmt.Sprintf("%.1f%%", r.ReceiverReductionPct),
			fmt.Sprintf("%d", r.SignupFailures),
			missed,
		})
	}
	return "Browser countermeasures (§7.1)\n" +
		Table([]string{"browser", "senders", "receivers", "sender red.", "receiver red.", "signup fail", "shields gaps"}, rows)
}

// Table4 renders the blocklist evaluation.
func Table4(t *countermeasure.Table4) string {
	cell := func(c countermeasure.Cell) string {
		return fmt.Sprintf("%d/%.1f%%", c.Count, c.Pct())
	}
	var rows [][]string
	for _, r := range t.Rows {
		rows = append(rows, []string{
			r.Metric, r.Method, cell(r.EasyList), cell(r.EasyPrivacy), cell(r.Combined),
		})
	}
	out := "Table 4: detection performance of well-known filters\n" +
		Table([]string{"metric", "method", "EasyList", "EasyPrivacy", "Combined"}, rows)
	if len(t.MissedTrackers) > 0 {
		out += "tracking providers missed by the combined lists: " + strings.Join(t.MissedTrackers, ", ") + "\n"
	}
	return out
}

// ComparisonRow pairs a paper value with our measured value.
type ComparisonRow struct {
	Metric   string
	Paper    string
	Measured string
}

// Comparison renders a paper-vs-measured block.
func Comparison(title string, rows []ComparisonRow) string {
	out := make([][]string, 0, len(rows))
	for _, r := range rows {
		out = append(out, []string{r.Metric, r.Paper, r.Measured})
	}
	return title + "\n" + Table([]string{"metric", "paper", "measured"}, out)
}

// SortedKeys is a small helper for deterministic map iteration in
// reports.
func SortedKeys[M ~map[string]V, V any](m M) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Figure2CSV renders the Figure 2 series as CSV (receiver, senders,
// sender_pct, brand, cloaked) for plotting tools.
func Figure2CSV(ranks []core.ReceiverRank) string {
	var b strings.Builder
	b.WriteString("receiver,senders,sender_pct,brand,cloaked\n")
	for _, r := range ranks {
		fmt.Fprintf(&b, "%s,%d,%.2f,%s,%v\n",
			r.Receiver, r.Senders, r.SenderPct, brandOf[r.Receiver], r.Cloaked)
	}
	return b.String()
}
