// Package httpwire serializes the study's traffic records to raw
// HTTP/1.1 messages — the bytes that would have crossed the wire. The
// pcap exporter embeds them in synthesized TCP streams, and the tests
// verify every message by parsing it back with net/http's own readers
// (the standard library as oracle).
package httpwire

import (
	"fmt"
	"net/url"
	"sort"
	"strings"

	"piileak/internal/httpmodel"
)

// Request renders a request as an HTTP/1.1 message (origin-form target,
// Host header, sorted headers for determinism, cookies folded into one
// Cookie header, Content-Length for bodies).
func Request(r *httpmodel.Request) ([]byte, error) {
	u, err := url.Parse(r.URL)
	if err != nil {
		return nil, fmt.Errorf("httpwire: parsing %q: %w", r.URL, err)
	}
	if u.Host == "" {
		return nil, fmt.Errorf("httpwire: %q has no host", r.URL)
	}
	target := u.RequestURI()
	if target == "" {
		target = "/"
	}
	method := r.Method
	if method == "" {
		method = "GET"
	}

	var b strings.Builder
	fmt.Fprintf(&b, "%s %s HTTP/1.1\r\n", method, target)
	fmt.Fprintf(&b, "Host: %s\r\n", u.Host)

	names := make([]string, 0, len(r.Headers))
	for name := range r.Headers {
		if strings.EqualFold(name, "Host") || strings.EqualFold(name, "Content-Length") ||
			strings.EqualFold(name, "Cookie") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(&b, "%s: %s\r\n", name, sanitizeHeader(r.Headers[name]))
	}
	if len(r.Cookies) > 0 {
		pairs := make([]string, len(r.Cookies))
		for i, c := range r.Cookies {
			pairs[i] = c.Name + "=" + c.Value
		}
		fmt.Fprintf(&b, "Cookie: %s\r\n", sanitizeHeader(strings.Join(pairs, "; ")))
	}
	if r.BodyType != "" {
		fmt.Fprintf(&b, "Content-Type: %s\r\n", sanitizeHeader(r.BodyType))
	}
	if len(r.Body) > 0 || method == "POST" {
		fmt.Fprintf(&b, "Content-Length: %d\r\n", len(r.Body))
	}
	b.WriteString("\r\n")
	out := append([]byte(b.String()), r.Body...)
	return out, nil
}

// Response renders a response as an HTTP/1.1 message. The simulator does
// not model response bodies, so Content-Length is zero and Set-Cookie
// headers carry the stored cookies.
func Response(resp *httpmodel.Response) []byte {
	status := resp.Status
	if status == 0 {
		status = 200
	}
	var b strings.Builder
	fmt.Fprintf(&b, "HTTP/1.1 %d %s\r\n", status, statusText(status))

	names := make([]string, 0, len(resp.Headers))
	for name := range resp.Headers {
		if strings.EqualFold(name, "Content-Length") || strings.EqualFold(name, "Set-Cookie") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(&b, "%s: %s\r\n", name, sanitizeHeader(resp.Headers[name]))
	}
	for _, c := range resp.SetCookies {
		fmt.Fprintf(&b, "Set-Cookie: %s=%s; Domain=%s; Path=/\r\n",
			c.Name, sanitizeHeader(c.Value), c.Domain)
	}
	b.WriteString("Content-Length: 0\r\n\r\n")
	return []byte(b.String())
}

// sanitizeHeader strips CR/LF so synthesized values cannot split
// headers.
func sanitizeHeader(v string) string {
	v = strings.ReplaceAll(v, "\r", "")
	return strings.ReplaceAll(v, "\n", " ")
}

// statusText covers the statuses the simulator emits.
func statusText(code int) string {
	switch code {
	case 200:
		return "OK"
	case 204:
		return "No Content"
	case 302:
		return "Found"
	case 404:
		return "Not Found"
	default:
		return "Status"
	}
}
