package httpwire

import (
	"bufio"
	"bytes"
	"io"
	"net/http"
	"strings"
	"testing"

	"piileak/internal/browser"
	"piileak/internal/crawler"
	"piileak/internal/httpmodel"
	"piileak/internal/webgen"
)

// parseWithStdlib is the oracle: net/http must accept our bytes.
func parseWithStdlib(t *testing.T, raw []byte) *http.Request {
	t.Helper()
	req, err := http.ReadRequest(bufio.NewReader(bytes.NewReader(raw)))
	if err != nil {
		t.Fatalf("net/http rejected our request:\n%s\nerror: %v", raw, err)
	}
	return req
}

func TestRequestGET(t *testing.T) {
	r := httpmodel.Request{
		Method:  "GET",
		URL:     "https://ct.pinterest.com/v3/collect?pd=abc&v=2",
		Headers: map[string]string{"Referer": "https://www.shop.example/"},
		Cookies: []httpmodel.Cookie{{Name: "sid", Value: "s1", Domain: "ct.pinterest.com"}},
	}
	raw, err := Request(&r)
	if err != nil {
		t.Fatal(err)
	}
	req := parseWithStdlib(t, raw)
	if req.Method != "GET" || req.Host != "ct.pinterest.com" {
		t.Errorf("parsed = %s %s", req.Method, req.Host)
	}
	if req.URL.Query().Get("pd") != "abc" {
		t.Errorf("query = %s", req.URL.RawQuery)
	}
	if req.Header.Get("Referer") != "https://www.shop.example/" {
		t.Errorf("referer = %q", req.Header.Get("Referer"))
	}
	c, err := req.Cookie("sid")
	if err != nil || c.Value != "s1" {
		t.Errorf("cookie = %v, %v", c, err)
	}
}

func TestRequestPOSTBody(t *testing.T) {
	r := httpmodel.Request{
		Method:   "POST",
		URL:      "https://api.bluecore.com/events",
		Body:     []byte(`{"data":"x"}`),
		BodyType: "application/json",
	}
	raw, err := Request(&r)
	if err != nil {
		t.Fatal(err)
	}
	req := parseWithStdlib(t, raw)
	body, _ := io.ReadAll(req.Body)
	if string(body) != `{"data":"x"}` {
		t.Errorf("body = %q", body)
	}
	if req.Header.Get("Content-Type") != "application/json" {
		t.Errorf("content-type = %q", req.Header.Get("Content-Type"))
	}
	if req.ContentLength != int64(len(body)) {
		t.Errorf("content-length = %d", req.ContentLength)
	}
}

func TestRequestHeaderInjectionNeutralized(t *testing.T) {
	r := httpmodel.Request{
		Method:  "GET",
		URL:     "https://t.example/p",
		Headers: map[string]string{"X-Evil": "a\r\nInjected: yes"},
	}
	raw, err := Request(&r)
	if err != nil {
		t.Fatal(err)
	}
	req := parseWithStdlib(t, raw)
	if req.Header.Get("Injected") != "" {
		t.Error("header injection succeeded")
	}
}

func TestRequestErrors(t *testing.T) {
	if _, err := Request(&httpmodel.Request{URL: "::bad"}); err == nil {
		t.Error("unparseable URL accepted")
	}
	if _, err := Request(&httpmodel.Request{URL: "/relative/only"}); err == nil {
		t.Error("hostless URL accepted")
	}
}

func TestResponse(t *testing.T) {
	resp := httpmodel.Response{
		Status:  302,
		Headers: map[string]string{"Location": "/welcome"},
		SetCookies: []httpmodel.Cookie{
			{Name: "session", Value: "tok", Domain: "www.shop.example"},
		},
	}
	raw := Response(&resp)
	parsed, err := http.ReadResponse(bufio.NewReader(bytes.NewReader(raw)), nil)
	if err != nil {
		t.Fatalf("net/http rejected our response:\n%s\nerror: %v", raw, err)
	}
	defer parsed.Body.Close()
	if parsed.StatusCode != 302 {
		t.Errorf("status = %d", parsed.StatusCode)
	}
	if parsed.Header.Get("Location") != "/welcome" {
		t.Errorf("location = %q", parsed.Header.Get("Location"))
	}
	cookies := parsed.Cookies()
	if len(cookies) != 1 || cookies[0].Name != "session" {
		t.Errorf("cookies = %+v", cookies)
	}
}

func TestResponseZeroStatusDefaults(t *testing.T) {
	raw := Response(&httpmodel.Response{})
	if !strings.HasPrefix(string(raw), "HTTP/1.1 200 OK\r\n") {
		t.Errorf("status line = %q", strings.SplitN(string(raw), "\r\n", 2)[0])
	}
}

// TestWholeCrawlSerializes runs every record of a small crawl through
// the serializer and the stdlib oracle.
func TestWholeCrawlSerializes(t *testing.T) {
	eco := webgen.MustGenerate(webgen.SmallConfig(91))
	ds := crawler.Crawl(eco, browser.Firefox88())
	n := 0
	for _, c := range ds.Crawls {
		for i := range c.Records {
			raw, err := Request(&c.Records[i].Request)
			if err != nil {
				t.Fatalf("%s record %d: %v", c.Domain, i, err)
			}
			parseWithStdlib(t, raw)
			respRaw := Response(&c.Records[i].Response)
			if _, err := http.ReadResponse(bufio.NewReader(bytes.NewReader(respRaw)), nil); err != nil {
				t.Fatalf("%s record %d response: %v", c.Domain, i, err)
			}
			n++
		}
	}
	if n == 0 {
		t.Fatal("no records serialized")
	}
}
