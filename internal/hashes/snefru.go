package hashes

import (
	"crypto/sha256"
	"encoding/binary"
	"hash"
	"math/bits"
)

// Snefru (Merkle, 1990) with 8 security passes. The original standard
// S-boxes are tables of "random" words published with the reference
// implementation and are not reproducible offline, so — per the DESIGN.md
// substitution rule — we generate the sixteen 256-entry S-boxes
// deterministically from a SHA-256 counter stream. The round structure
// (512-bit block of 16 words, two S-boxes per pass selected by word index,
// neighbour-XOR diffusion, the [16,8,16,24] rotation schedule, and the
// reversed-word output feedback) follows the published algorithm, so the
// code path a detector exercises is the same as with the original tables.

// snefruSboxes holds 16 substitution boxes (two per security pass).
var snefruSboxes = func() (boxes [16][256]uint32) {
	var counter [8]byte
	var blockIdx uint64
	stream := func() [32]byte {
		binary.BigEndian.PutUint64(counter[:], blockIdx)
		blockIdx++
		return sha256.Sum256(append([]byte("piileak/snefru/sbox/v1/"), counter[:]...))
	}
	buf := stream()
	used := 0
	next := func() uint32 {
		if used+4 > len(buf) {
			buf = stream()
			used = 0
		}
		v := binary.BigEndian.Uint32(buf[used:])
		used += 4
		return v
	}
	for b := range boxes {
		for i := range boxes[b] {
			boxes[b][i] = next()
		}
	}
	return boxes
}()

var snefruShifts = [4]int{16, 8, 16, 24}

const snefruPasses = 8

// snefruE applies the Snefru permutation to a 16-word block in place.
func snefruE(block *[16]uint32) {
	for pass := 0; pass < snefruPasses; pass++ {
		for _, shift := range snefruShifts {
			for i := 0; i < 16; i++ {
				// Two S-boxes per pass, alternating every two words.
				box := &snefruSboxes[2*pass+(i/2)%2]
				t := box[byte(block[i])]
				block[(i+15)%16] ^= t
				block[(i+1)%16] ^= t
			}
			for i := 0; i < 16; i++ {
				block[i] = bits.RotateLeft32(block[i], -shift)
			}
		}
	}
}

// snefruDigest implements hash.Hash for Snefru with 128- or 256-bit output.
type snefruDigest struct {
	h        [8]uint32 // output chaining words (first outWords used)
	outWords int       // 4 for Snefru-128, 8 for Snefru-256
	buf      []byte
	len      uint64
}

// NewSnefru128 returns a new Snefru hash with 128-bit output.
func NewSnefru128() hash.Hash { return newSnefru(4) }

// NewSnefru256 returns a new Snefru hash with 256-bit output.
func NewSnefru256() hash.Hash { return newSnefru(8) }

func newSnefru(outWords int) hash.Hash {
	d := &snefruDigest{outWords: outWords}
	d.Reset()
	return d
}

func (d *snefruDigest) Size() int { return d.outWords * 4 }

// BlockSize is the input chunk size: the 64-byte block minus the chaining
// words.
func (d *snefruDigest) BlockSize() int { return 64 - d.outWords*4 }

func (d *snefruDigest) Reset() {
	d.h = [8]uint32{}
	d.buf = d.buf[:0]
	d.len = 0
}

func (d *snefruDigest) Write(p []byte) (int, error) {
	written := len(p)
	d.len += uint64(written)
	d.buf = append(d.buf, p...)
	chunk := d.BlockSize()
	for len(d.buf) >= chunk {
		d.block(d.buf[:chunk])
		d.buf = d.buf[chunk:]
	}
	return written, nil
}

// block hashes one input chunk: the 16-word block is the chaining value
// followed by the chunk; after the permutation the chaining value absorbs
// the reversed tail words.
func (d *snefruDigest) block(chunk []byte) {
	var b [16]uint32
	copy(b[:d.outWords], d.h[:d.outWords])
	for i := 0; i < len(chunk)/4; i++ {
		b[d.outWords+i] = binary.BigEndian.Uint32(chunk[i*4:])
	}
	snefruE(&b)
	for i := 0; i < d.outWords; i++ {
		d.h[i] ^= b[15-i]
	}
}

func (d *snefruDigest) Sum(in []byte) []byte {
	cp := *d
	cp.buf = append([]byte(nil), d.buf...)
	chunk := cp.BlockSize()
	// Zero-pad the final partial chunk.
	if len(cp.buf) > 0 {
		pad := make([]byte, chunk-len(cp.buf))
		cp.buf = append(cp.buf, pad...)
		cp.block(cp.buf)
	}
	// Final length block: bit count in the last two words.
	lenBlock := make([]byte, chunk)
	binary.BigEndian.PutUint64(lenBlock[chunk-8:], cp.len*8)
	cp.block(lenBlock)

	out := make([]byte, cp.Size())
	for i := 0; i < cp.outWords; i++ {
		binary.BigEndian.PutUint32(out[i*4:], cp.h[i])
	}
	return append(in, out...)
}
