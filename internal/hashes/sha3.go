package hashes

import (
	"hash"
	"math/bits"
)

// This file implements the SHA-3 family (FIPS 202) on top of a
// from-scratch Keccak-f[1600] permutation. The rotation offsets are
// generated from the spec's (t+1)(t+2)/2 walk rather than transcribed,
// which removes a whole class of table typos.

var keccakRC = [24]uint64{
	0x0000000000000001, 0x0000000000008082, 0x800000000000808a, 0x8000000080008000,
	0x000000000000808b, 0x0000000080000001, 0x8000000080008081, 0x8000000000008009,
	0x000000000000008a, 0x0000000000000088, 0x0000000080008009, 0x000000008000000a,
	0x000000008000808b, 0x800000000000008b, 0x8000000000008089, 0x8000000000008003,
	0x8000000000008002, 0x8000000000000080, 0x000000000000800a, 0x800000008000000a,
	0x8000000080008081, 0x8000000000008080, 0x0000000080000001, 0x8000000080008008,
}

// keccakRot[x][y] holds the rho rotation offset for lane (x, y).
var keccakRot = func() (r [5][5]int) {
	x, y := 1, 0
	for t := 0; t < 24; t++ {
		r[x][y] = ((t + 1) * (t + 2) / 2) % 64
		x, y = y, (2*x+3*y)%5
	}
	return r
}()

// keccakF1600 applies the 24-round Keccak permutation to the state,
// indexed as a[x+5*y].
func keccakF1600(a *[25]uint64) {
	for round := 0; round < 24; round++ {
		// Theta.
		var c [5]uint64
		for x := 0; x < 5; x++ {
			c[x] = a[x] ^ a[x+5] ^ a[x+10] ^ a[x+15] ^ a[x+20]
		}
		for x := 0; x < 5; x++ {
			d := c[(x+4)%5] ^ bits.RotateLeft64(c[(x+1)%5], 1)
			for y := 0; y < 5; y++ {
				a[x+5*y] ^= d
			}
		}
		// Rho and Pi.
		var b [25]uint64
		for x := 0; x < 5; x++ {
			for y := 0; y < 5; y++ {
				b[y+5*((2*x+3*y)%5)] = bits.RotateLeft64(a[x+5*y], keccakRot[x][y])
			}
		}
		// Chi.
		for x := 0; x < 5; x++ {
			for y := 0; y < 5; y++ {
				a[x+5*y] = b[x+5*y] ^ (^b[(x+1)%5+5*y] & b[(x+2)%5+5*y])
			}
		}
		// Iota.
		a[0] ^= keccakRC[round]
	}
}

// sha3Digest is a sponge with SHA-3 domain padding (0x06 ... 0x80).
type sha3Digest struct {
	state   [25]uint64
	rate    int // bytes absorbed per permutation
	outSize int
	buf     []byte
}

// NewSHA3_224 returns a new SHA3-224 hash.
func NewSHA3_224() hash.Hash { return newSHA3(28) }

// NewSHA3_256 returns a new SHA3-256 hash.
func NewSHA3_256() hash.Hash { return newSHA3(32) }

// NewSHA3_384 returns a new SHA3-384 hash.
func NewSHA3_384() hash.Hash { return newSHA3(48) }

// NewSHA3_512 returns a new SHA3-512 hash.
func NewSHA3_512() hash.Hash { return newSHA3(64) }

func newSHA3(outSize int) hash.Hash {
	return &sha3Digest{rate: 200 - 2*outSize, outSize: outSize}
}

func (d *sha3Digest) Size() int      { return d.outSize }
func (d *sha3Digest) BlockSize() int { return d.rate }

func (d *sha3Digest) Reset() {
	d.state = [25]uint64{}
	d.buf = d.buf[:0]
}

func (d *sha3Digest) Write(p []byte) (int, error) {
	written := len(p)
	d.buf = append(d.buf, p...)
	for len(d.buf) >= d.rate {
		d.absorb(d.buf[:d.rate])
		d.buf = d.buf[d.rate:]
	}
	return written, nil
}

func (d *sha3Digest) absorb(block []byte) {
	for i := 0; i < len(block); i++ {
		d.state[i/8] ^= uint64(block[i]) << (8 * (i % 8))
	}
	keccakF1600(&d.state)
}

func (d *sha3Digest) Sum(in []byte) []byte {
	cp := *d
	cp.buf = append([]byte(nil), d.buf...)

	// Pad: SHA-3 domain bits (01) followed by pad10*1.
	pad := make([]byte, cp.rate-len(cp.buf))
	pad[0] = 0x06
	pad[len(pad)-1] |= 0x80
	cp.buf = append(cp.buf, pad...)
	cp.absorb(cp.buf)

	// Squeeze. All SHA-3 output sizes fit in a single rate block.
	out := make([]byte, cp.outSize)
	for i := range out {
		out[i] = byte(cp.state[i/8] >> (8 * (i % 8)))
	}
	return append(in, out...)
}
