package hashes

import (
	"bytes"
	"encoding/hex"
	"testing"
	"testing/quick"
)

// kat asserts a known-answer test for a registered function.
func kat(t *testing.T, name, input, wantHex string) {
	t.Helper()
	got, err := HexSum(name, []byte(input))
	if err != nil {
		t.Fatalf("HexSum(%q): %v", name, err)
	}
	if got != wantHex {
		t.Errorf("%s(%q) = %s, want %s", name, input, got, wantHex)
	}
}

func TestMD2Vectors(t *testing.T) {
	kat(t, "md2", "", "8350e5a3e24c153df2275c9f80692773")
	kat(t, "md2", "a", "32ec01ec4a6dac72c0ab96fb34c0b5d1")
	kat(t, "md2", "abc", "da853b0d3f88d99b30283a69e6ded6bb")
	kat(t, "md2", "message digest", "ab4f496bfb2a530b219ff33031fe06b0")
}

func TestMD2TableIsPermutation(t *testing.T) {
	var seen [256]bool
	for _, v := range md2S {
		if seen[v] {
			t.Fatalf("md2S contains duplicate value %d", v)
		}
		seen[v] = true
	}
}

func TestMD4Vectors(t *testing.T) {
	kat(t, "md4", "", "31d6cfe0d16ae931b73c59d7e0c089c0")
	kat(t, "md4", "a", "bde52cb31de33e46245e05fbdbd6fb24")
	kat(t, "md4", "abc", "a448017aaf21d8525fc10ae87aa6729d")
	kat(t, "md4", "message digest", "d9130a8164549fe818874806e1c7014b")
}

func TestRIPEMD160Vectors(t *testing.T) {
	kat(t, "ripemd_160", "", "9c1185a5c5e9fc54612808977ee8f548b2258d31")
	kat(t, "ripemd_160", "a", "0bdc9d2d256b3ee9daae347be6f4dc835a467ffe")
	kat(t, "ripemd_160", "abc", "8eb208f7e05d987a9b044a8e98c6b087f15a0bfc")
	kat(t, "ripemd_160", "message digest", "5d0689ef49d2fae572b881b123a85ffa21595f36")
}

func TestRIPEMD128Vectors(t *testing.T) {
	kat(t, "ripemd_128", "", "cdf26213a150dc3ecb610f18f6b38b46")
	kat(t, "ripemd_128", "abc", "c14a12199c66e4ba84636b0f69144c77")
}

func TestRIPEMDWideVectors(t *testing.T) {
	kat(t, "ripemd_256", "",
		"02ba4c4e5f8ecd1877fc52d64d30e37a2d9774fb1e5d026380ae0168e3c5522d")
	kat(t, "ripemd_320", "",
		"22d65d5661536cdc75c1fdf5c6de7b41b9f27325ebc61e8557177d705a0ec880151c3a32a00899b8")
}

func TestSHA3Vectors(t *testing.T) {
	kat(t, "sha3_224", "", "6b4e03423667dbb73b6e15454f0eb1abd4597f9a1b078e3f5b5a6bc7")
	kat(t, "sha3_256", "", "a7ffc6f8bf1ed76651c14756a061d662f580ff4de43b49fa82d80a4b80f8434a")
	kat(t, "sha3_384", "",
		"0c63a75b845e4f7d01107d852e4c2485c51a50aaaa94fc61995e71bbee983a2ac3713831264adb47fb6bd1e058d5f004")
	kat(t, "sha3_512", "",
		"a69f73cca23a9ac5c8b567dc185a756e97c982164fe25859e0d1dcc1475c80a615b2123af1f5f94c11e3e9402c3ac558f500199d95b6d3e301758586281dcd26")
	kat(t, "sha3_256", "abc", "3a985da74fe225b2045c172d6bd390bd855f086e3e9d525b46bfe24511431532")
}

func TestWhirlpoolVectors(t *testing.T) {
	kat(t, "whirlpool", "",
		"19fa61d75522a4669b44e39c1d2e1726c530232130d407f89afee0964997f7a73e83be698b288febcf88e3e03c4f0757ea8964e59b63d93708b138cc42a66eb3")
	kat(t, "whirlpool", "abc",
		"4e2448a4c6f486bb16b6562c73b4020bf3043e3a731bce721ae1b303d97e6d4c7181eebdb6c57e277d0e34957114cbd6c797fc9d95d8b582d225292076d4eef5")
}

func TestWhirlpoolSboxFirstEntries(t *testing.T) {
	// First published row of the Whirlpool S-box.
	want := []byte{0x18, 0x23, 0xC6, 0xE8, 0x87, 0xB8, 0x01, 0x4F}
	for i, w := range want {
		if whirlSbox[i] != w {
			t.Errorf("whirlSbox[%d] = %#02x, want %#02x", i, whirlSbox[i], w)
		}
	}
}

func TestWhirlpoolSboxIsPermutation(t *testing.T) {
	var seen [256]bool
	for _, v := range whirlSbox {
		if seen[v] {
			t.Fatalf("whirlSbox contains duplicate value %#02x", v)
		}
		seen[v] = true
	}
}

func TestBlake2bVectors(t *testing.T) {
	// RFC 7693 appendix A vector.
	kat(t, "blake2b", "abc",
		"ba80a53f981c4d0d6a2797b69f12f6e94c212f14685ac4b74b12bb6fdbffa2d17d87c5392aab792dc252d5de4533cc9518d38aa8dbf1925ab92386edd4009923")
}

func TestBlake2bSizes(t *testing.T) {
	for _, size := range []int{1, 20, 32, 48, 64} {
		h := NewBlake2b(size)
		h.Write([]byte("pii"))
		if got := len(h.Sum(nil)); got != size {
			t.Errorf("BLAKE2b-%d digest length = %d", size*8, got)
		}
	}
}

func TestBlake2bInvalidSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewBlake2b(65) did not panic")
		}
	}()
	NewBlake2b(65)
}

func TestCRC16Vector(t *testing.T) {
	if got := CRC16([]byte("123456789")); got != 0xBB3D {
		t.Errorf("CRC16(check) = %#04x, want 0xBB3D", got)
	}
	kat(t, "crc16", "123456789", "bb3d")
}

func TestCRC32Adler32MatchStdlib(t *testing.T) {
	kat(t, "crc32", "123456789", "cbf43926")
	kat(t, "adler32", "Wikipedia", "11e60398")
}

func TestSnefruDeterministicAndSized(t *testing.T) {
	for name, size := range map[string]int{"snefru128": 16, "snefru256": 32} {
		a, err := Sum(name, []byte("foo@mydom.com"))
		if err != nil {
			t.Fatal(err)
		}
		b, _ := Sum(name, []byte("foo@mydom.com"))
		if !bytes.Equal(a, b) {
			t.Errorf("%s not deterministic", name)
		}
		if len(a) != size {
			t.Errorf("%s digest length = %d, want %d", name, len(a), size)
		}
		c, _ := Sum(name, []byte("foo@mydom.co"))
		if bytes.Equal(a, c) {
			t.Errorf("%s collides on near-identical inputs", name)
		}
	}
}

func TestSnefruSboxesDiffer(t *testing.T) {
	for i := 1; i < len(snefruSboxes); i++ {
		if snefruSboxes[0] == snefruSboxes[i] {
			t.Fatalf("snefru S-box %d equals S-box 0", i)
		}
	}
}

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"md2", "md4", "md5", "sha1", "sha224", "sha256", "sha384", "sha512",
		"crc16", "crc32", "adler32",
		"sha3_224", "sha3_256", "sha3_384", "sha3_512",
		"ripemd_128", "ripemd_160", "ripemd_256", "ripemd_320",
		"whirlpool", "blake2b", "snefru128", "snefru256",
	}
	for _, name := range want {
		f, ok := Lookup(name)
		if !ok {
			t.Errorf("registry missing %q", name)
			continue
		}
		if got := len(f.Sum([]byte("x"))); got != f.Size {
			t.Errorf("%s: digest length %d != declared Size %d", name, got, f.Size)
		}
	}
	if len(Names()) != len(want) {
		t.Errorf("registry has %d entries, want %d: %v", len(Names()), len(want), Names())
	}
}

func TestSumUnknownName(t *testing.T) {
	if _, err := Sum("sha9000", []byte("x")); err == nil {
		t.Error("Sum with unknown name succeeded")
	}
}

// TestStreamingEquivalence checks, for every registered hash, that writing
// in arbitrary chunks produces the same digest as a single write, and that
// Sum does not disturb the running state.
func TestStreamingEquivalence(t *testing.T) {
	for _, name := range Names() {
		f, _ := Lookup(name)
		property := func(data []byte, split uint8) bool {
			one := f.Sum(data)

			h := f.New()
			cut := 0
			if len(data) > 0 {
				cut = int(split) % (len(data) + 1)
			}
			h.Write(data[:cut])
			mid := h.Sum(nil) // must not affect the final digest
			_ = mid
			h.Write(data[cut:])
			streamed := h.Sum(nil)
			return bytes.Equal(one, streamed)
		}
		if err := quick.Check(property, &quick.Config{MaxCount: 40}); err != nil {
			t.Errorf("%s: streaming mismatch: %v", name, err)
		}
	}
}

// TestResetRestoresInitialState verifies Reset for every registered hash.
func TestResetRestoresInitialState(t *testing.T) {
	for _, name := range Names() {
		f, _ := Lookup(name)
		h := f.New()
		h.Write([]byte("garbage that must be forgotten"))
		h.Reset()
		h.Write([]byte("pii"))
		if !bytes.Equal(h.Sum(nil), f.Sum([]byte("pii"))) {
			t.Errorf("%s: Reset did not restore initial state", name)
		}
	}
}

// TestAvalanche samples a one-bit input change for every function and
// requires the digest to change. This is a sanity property, not a
// cryptographic claim.
func TestAvalanche(t *testing.T) {
	base := []byte("foo@mydom.com")
	flipped := append([]byte(nil), base...)
	flipped[0] ^= 0x01
	for _, name := range Names() {
		f, _ := Lookup(name)
		if bytes.Equal(f.Sum(base), f.Sum(flipped)) {
			t.Errorf("%s: digest unchanged after bit flip", name)
		}
	}
}

func TestHexSum(t *testing.T) {
	f, _ := Lookup("sha256")
	want := hex.EncodeToString(f.Sum([]byte("x")))
	if got := f.HexSum([]byte("x")); got != want {
		t.Errorf("HexSum = %s, want %s", got, want)
	}
	got, err := HexSum("sha256", []byte("x"))
	if err != nil || got != want {
		t.Errorf("package HexSum = %s, %v", got, err)
	}
}

// TestLongInputs exercises multi-block code paths (buffering, padding
// boundaries) for every function at lengths around each block size.
func TestLongInputs(t *testing.T) {
	for _, name := range Names() {
		f, _ := Lookup(name)
		bs := f.New().BlockSize()
		for _, n := range []int{bs - 1, bs, bs + 1, 3*bs - 1, 3 * bs, 1000} {
			if n < 0 {
				continue
			}
			data := bytes.Repeat([]byte{0xA5}, n)
			one := f.Sum(data)
			h := f.New()
			for i := 0; i < len(data); i += 7 {
				end := i + 7
				if end > len(data) {
					end = len(data)
				}
				h.Write(data[i:end])
			}
			if !bytes.Equal(one, h.Sum(nil)) {
				t.Errorf("%s: mismatch at length %d", name, n)
			}
		}
	}
}

func BenchmarkRegisteredHashes(b *testing.B) {
	data := bytes.Repeat([]byte("foo@mydom.com "), 8)
	for _, name := range Names() {
		f, _ := Lookup(name)
		b.Run(name, func(b *testing.B) {
			b.SetBytes(int64(len(data)))
			for i := 0; i < b.N; i++ {
				f.Sum(data)
			}
		})
	}
}

// TestQuickBrownFoxVectors adds a second, independent set of published
// vectors over a longer input that crosses block boundaries differently
// from the short KATs.
func TestQuickBrownFoxVectors(t *testing.T) {
	const fox = "The quick brown fox jumps over the lazy dog"
	kat(t, "md4", fox, "1bee69a46ba811185c194762abaeae90")
	kat(t, "md5", fox, "9e107d9d372bb6826bd81d3542a419d6")
	kat(t, "sha1", fox, "2fd4e1c67a2d28fced849ee1bb76e7391b93eb12")
	kat(t, "sha256", fox, "d7a8fbb307d7809469ca9abcb0082e4f8d5651e46d3cdb762d02d0bf37c9e592")
	kat(t, "ripemd_160", fox, "37f332f68db77bd9d7edd4969571ad671cf9dd3b")
	kat(t, "crc32", fox, "414fa339")
	kat(t, "whirlpool", fox,
		"b97de512e91e3828b40d2b0fdce9ceb3c4a71f9bea8d88e75c4fa854df36725fd2b52eb6544edcacd6f8beddfea403cb55ae31f03ad62a5ef54e42ee82c3fb35")
}

// TestMillionA exercises the multi-block streaming path with the
// classic one-million-'a' vector for the stdlib-backed functions and a
// self-consistency check for the from-scratch ones.
func TestMillionA(t *testing.T) {
	if testing.Short() {
		t.Skip("long input")
	}
	million := bytes.Repeat([]byte{'a'}, 1_000_000)
	kat(t, "sha1", string(million), "34aa973cd4c4daa4f61eeb2bdbad27316534016f")
	kat(t, "sha256", string(million), "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0")
	// From-scratch functions: one-shot equals chunked (128-byte writes).
	for _, name := range []string{"md4", "ripemd_160", "sha3_256", "blake2b", "whirlpool"} {
		f, _ := Lookup(name)
		one := f.Sum(million)
		h := f.New()
		for i := 0; i < len(million); i += 128 {
			end := i + 128
			if end > len(million) {
				end = len(million)
			}
			h.Write(million[i:end])
		}
		if !bytes.Equal(one, h.Sum(nil)) {
			t.Errorf("%s: million-a chunked mismatch", name)
		}
	}
}
