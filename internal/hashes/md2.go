package hashes

import "hash"

// MD2Size is the digest size of MD2 in bytes.
const MD2Size = 16

// md2S is the MD2 substitution table from RFC 1319, a permutation of
// 0..255 derived from the digits of pi. md2_test.go asserts the
// permutation property to guard against transcription errors.
var md2S = [256]byte{
	41, 46, 67, 201, 162, 216, 124, 1, 61, 54, 84, 161, 236, 240, 6, 19,
	98, 167, 5, 243, 192, 199, 115, 140, 152, 147, 43, 217, 188, 76, 130, 202,
	30, 155, 87, 60, 253, 212, 224, 22, 103, 66, 111, 24, 138, 23, 229, 18,
	190, 78, 196, 214, 218, 158, 222, 73, 160, 251, 245, 142, 187, 47, 238, 122,
	169, 104, 121, 145, 21, 178, 7, 63, 148, 194, 16, 137, 11, 34, 95, 33,
	128, 127, 93, 154, 90, 144, 50, 39, 53, 62, 204, 231, 191, 247, 151, 3,
	255, 25, 48, 179, 72, 165, 181, 209, 215, 94, 146, 42, 172, 86, 170, 198,
	79, 184, 56, 210, 150, 164, 125, 182, 118, 252, 107, 226, 156, 116, 4, 241,
	69, 157, 112, 89, 100, 113, 135, 32, 134, 91, 207, 101, 230, 45, 168, 2,
	27, 96, 37, 173, 174, 176, 185, 246, 28, 70, 97, 105, 52, 64, 126, 15,
	85, 71, 163, 35, 221, 81, 175, 58, 195, 92, 249, 206, 186, 197, 234, 38,
	44, 83, 13, 110, 133, 40, 132, 9, 211, 223, 205, 244, 65, 129, 77, 82,
	106, 220, 55, 200, 108, 193, 171, 250, 36, 225, 123, 8, 12, 189, 177, 74,
	120, 136, 149, 139, 227, 99, 232, 109, 233, 203, 213, 254, 59, 0, 29, 57,
	242, 239, 183, 14, 102, 88, 208, 228, 166, 119, 114, 248, 235, 117, 75, 10,
	49, 68, 80, 180, 143, 237, 31, 26, 219, 153, 141, 51, 159, 17, 131, 20,
}

// md2Digest implements MD2 (RFC 1319).
type md2Digest struct {
	state    [48]byte // X
	checksum [16]byte // C
	buf      [16]byte
	n        int // bytes buffered in buf
}

// NewMD2 returns a new MD2 hash.
func NewMD2() hash.Hash { d := new(md2Digest); d.Reset(); return d }

func (d *md2Digest) Size() int      { return MD2Size }
func (d *md2Digest) BlockSize() int { return 16 }

func (d *md2Digest) Reset() {
	d.state = [48]byte{}
	d.checksum = [16]byte{}
	d.buf = [16]byte{}
	d.n = 0
}

func (d *md2Digest) Write(p []byte) (int, error) {
	written := len(p)
	for len(p) > 0 {
		space := 16 - d.n
		if space > len(p) {
			space = len(p)
		}
		copy(d.buf[d.n:], p[:space])
		d.n += space
		p = p[space:]
		if d.n == 16 {
			d.block(d.buf[:])
			d.n = 0
		}
	}
	return written, nil
}

func (d *md2Digest) block(m []byte) {
	// Update checksum.
	l := d.checksum[15]
	for i := 0; i < 16; i++ {
		d.checksum[i] ^= md2S[m[i]^l]
		l = d.checksum[i]
	}
	// Update state.
	for i := 0; i < 16; i++ {
		d.state[16+i] = m[i]
		d.state[32+i] = d.state[16+i] ^ d.state[i]
	}
	var t byte
	for round := 0; round < 18; round++ {
		for i := 0; i < 48; i++ {
			d.state[i] ^= md2S[t]
			t = d.state[i]
		}
		t += byte(round)
	}
}

func (d *md2Digest) Sum(in []byte) []byte {
	// Operate on a copy so the digest can keep absorbing data.
	cp := *d
	pad := byte(16 - cp.n)
	padding := make([]byte, pad)
	for i := range padding {
		padding[i] = pad
	}
	cp.Write(padding) //nolint:errcheck // cannot fail
	cs := cp.checksum // checksum after padding
	cp.block(cs[:])   // absorb the checksum as a final block
	return append(in, cp.state[:16]...)
}
