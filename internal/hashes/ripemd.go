package hashes

import (
	"encoding/binary"
	"hash"
	"math/bits"
)

// This file implements the four RIPEMD variants the paper's candidate set
// uses: RIPEMD-128, RIPEMD-160, RIPEMD-256 and RIPEMD-320, following the
// original Dobbertin/Bosselaers/Preneel specification. The 128/256 pair
// shares the 64-step dual-line schedule; the 160/320 pair shares the
// 80-step schedule. 256 and 320 are the "double width" variants that keep
// the two lines separate and exchange one register after every round.

// Message word selection for the left (r) and right (rr) lines.
var ripemdR = [80]int{
	0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15,
	7, 4, 13, 1, 10, 6, 15, 3, 12, 0, 9, 5, 2, 14, 11, 8,
	3, 10, 14, 4, 9, 15, 8, 1, 2, 7, 0, 6, 13, 11, 5, 12,
	1, 9, 11, 10, 0, 8, 12, 4, 13, 3, 7, 15, 14, 5, 6, 2,
	4, 0, 5, 9, 7, 12, 2, 10, 14, 1, 3, 8, 11, 6, 15, 13,
}

var ripemdRR = [80]int{
	5, 14, 7, 0, 9, 2, 11, 4, 13, 6, 15, 8, 1, 10, 3, 12,
	6, 11, 3, 7, 0, 13, 5, 10, 14, 15, 8, 12, 4, 9, 1, 2,
	15, 5, 1, 3, 7, 14, 6, 9, 11, 8, 12, 2, 10, 0, 4, 13,
	8, 6, 4, 1, 3, 11, 15, 0, 5, 12, 2, 13, 9, 7, 10, 14,
	12, 15, 10, 4, 1, 5, 8, 7, 6, 2, 13, 14, 0, 3, 9, 11,
}

// Per-step rotation amounts for the left (s) and right (ss) lines.
var ripemdS = [80]int{
	11, 14, 15, 12, 5, 8, 7, 9, 11, 13, 14, 15, 6, 7, 9, 8,
	7, 6, 8, 13, 11, 9, 7, 15, 7, 12, 15, 9, 11, 7, 13, 12,
	11, 13, 6, 7, 14, 9, 13, 15, 14, 8, 13, 6, 5, 12, 7, 5,
	11, 12, 14, 15, 14, 15, 9, 8, 9, 14, 5, 6, 8, 6, 5, 12,
	9, 15, 5, 11, 6, 8, 13, 12, 5, 12, 13, 14, 11, 8, 5, 6,
}

var ripemdSS = [80]int{
	8, 9, 9, 11, 13, 15, 15, 5, 7, 7, 8, 11, 14, 14, 12, 6,
	9, 13, 15, 7, 12, 8, 9, 11, 7, 7, 12, 7, 6, 15, 13, 11,
	9, 7, 15, 11, 8, 6, 6, 14, 12, 13, 5, 14, 13, 13, 7, 5,
	15, 5, 8, 11, 14, 14, 6, 14, 6, 9, 12, 9, 12, 5, 15, 8,
	8, 5, 12, 9, 12, 5, 14, 6, 8, 13, 6, 5, 15, 13, 11, 11,
}

// Round constants.
var ripemdK = [5]uint32{0x00000000, 0x5a827999, 0x6ed9eba1, 0x8f1bbcdc, 0xa953fd4e}
var ripemdKK160 = [5]uint32{0x50a28be6, 0x5c4dd124, 0x6d703ef3, 0x7a6d76e9, 0x00000000}
var ripemdKK128 = [4]uint32{0x50a28be6, 0x5c4dd124, 0x6d703ef3, 0x00000000}

// The five boolean step functions.
func ripemdF(j int, x, y, z uint32) uint32 {
	switch j / 16 {
	case 0:
		return x ^ y ^ z
	case 1:
		return (x & y) | (^x & z)
	case 2:
		return (x | ^y) ^ z
	case 3:
		return (x & z) | (y & ^z)
	default:
		return x ^ (y | ^z)
	}
}

// ripemdDigest is the shared buffering machinery; variant selects the
// compression function and output width.
type ripemdDigest struct {
	h       [10]uint32
	buf     [64]byte
	n       int
	len     uint64
	variant int // 128, 160, 256 or 320
}

// NewRIPEMD128 returns a new RIPEMD-128 hash.
func NewRIPEMD128() hash.Hash { return newRIPEMD(128) }

// NewRIPEMD160 returns a new RIPEMD-160 hash.
func NewRIPEMD160() hash.Hash { return newRIPEMD(160) }

// NewRIPEMD256 returns a new RIPEMD-256 hash.
func NewRIPEMD256() hash.Hash { return newRIPEMD(256) }

// NewRIPEMD320 returns a new RIPEMD-320 hash.
func NewRIPEMD320() hash.Hash { return newRIPEMD(320) }

func newRIPEMD(variant int) hash.Hash {
	d := &ripemdDigest{variant: variant}
	d.Reset()
	return d
}

func (d *ripemdDigest) Size() int      { return d.variant / 8 }
func (d *ripemdDigest) BlockSize() int { return 64 }

func (d *ripemdDigest) Reset() {
	d.n = 0
	d.len = 0
	switch d.variant {
	case 128:
		d.h = [10]uint32{0x67452301, 0xefcdab89, 0x98badcfe, 0x10325476}
	case 160:
		d.h = [10]uint32{0x67452301, 0xefcdab89, 0x98badcfe, 0x10325476, 0xc3d2e1f0}
	case 256:
		d.h = [10]uint32{
			0x67452301, 0xefcdab89, 0x98badcfe, 0x10325476,
			0x76543210, 0xfedcba98, 0x89abcdef, 0x01234567,
		}
	case 320:
		d.h = [10]uint32{
			0x67452301, 0xefcdab89, 0x98badcfe, 0x10325476, 0xc3d2e1f0,
			0x76543210, 0xfedcba98, 0x89abcdef, 0x01234567, 0x3c2d1e0f,
		}
	}
}

func (d *ripemdDigest) Write(p []byte) (int, error) {
	written := len(p)
	d.len += uint64(written)
	for len(p) > 0 {
		space := 64 - d.n
		if space > len(p) {
			space = len(p)
		}
		copy(d.buf[d.n:], p[:space])
		d.n += space
		p = p[space:]
		if d.n == 64 {
			d.block(d.buf[:])
			d.n = 0
		}
	}
	return written, nil
}

func (d *ripemdDigest) block(p []byte) {
	var x [16]uint32
	for i := range x {
		x[i] = binary.LittleEndian.Uint32(p[i*4:])
	}
	switch d.variant {
	case 128:
		d.block128(&x)
	case 160:
		d.block160(&x)
	case 256:
		d.block256(&x)
	case 320:
		d.block320(&x)
	}
}

func (d *ripemdDigest) block128(x *[16]uint32) {
	a, b, c, dd := d.h[0], d.h[1], d.h[2], d.h[3]
	aa, bb, cc, ddd := d.h[0], d.h[1], d.h[2], d.h[3]
	for j := 0; j < 64; j++ {
		t := bits.RotateLeft32(a+ripemdF(j, b, c, dd)+x[ripemdR[j]]+ripemdK[j/16], ripemdS[j])
		a, dd, c, b = dd, c, b, t
		t = bits.RotateLeft32(aa+ripemdF(63-j, bb, cc, ddd)+x[ripemdRR[j]]+ripemdKK128[j/16], ripemdSS[j])
		aa, ddd, cc, bb = ddd, cc, bb, t
	}
	t := d.h[1] + c + ddd
	d.h[1] = d.h[2] + dd + aa
	d.h[2] = d.h[3] + a + bb
	d.h[3] = d.h[0] + b + cc
	d.h[0] = t
}

func (d *ripemdDigest) block160(x *[16]uint32) {
	a, b, c, dd, e := d.h[0], d.h[1], d.h[2], d.h[3], d.h[4]
	aa, bb, cc, ddd, ee := d.h[0], d.h[1], d.h[2], d.h[3], d.h[4]
	for j := 0; j < 80; j++ {
		t := bits.RotateLeft32(a+ripemdF(j, b, c, dd)+x[ripemdR[j]]+ripemdK[j/16], ripemdS[j]) + e
		a, e, dd, c, b = e, dd, bits.RotateLeft32(c, 10), b, t
		t = bits.RotateLeft32(aa+ripemdF(79-j, bb, cc, ddd)+x[ripemdRR[j]]+ripemdKK160[j/16], ripemdSS[j]) + ee
		aa, ee, ddd, cc, bb = ee, ddd, bits.RotateLeft32(cc, 10), bb, t
	}
	t := d.h[1] + c + ddd
	d.h[1] = d.h[2] + dd + ee
	d.h[2] = d.h[3] + e + aa
	d.h[3] = d.h[4] + a + bb
	d.h[4] = d.h[0] + b + cc
	d.h[0] = t
}

func (d *ripemdDigest) block256(x *[16]uint32) {
	a, b, c, dd := d.h[0], d.h[1], d.h[2], d.h[3]
	aa, bb, cc, ddd := d.h[4], d.h[5], d.h[6], d.h[7]
	for j := 0; j < 64; j++ {
		t := bits.RotateLeft32(a+ripemdF(j, b, c, dd)+x[ripemdR[j]]+ripemdK[j/16], ripemdS[j])
		a, dd, c, b = dd, c, b, t
		t = bits.RotateLeft32(aa+ripemdF(63-j, bb, cc, ddd)+x[ripemdRR[j]]+ripemdKK128[j/16], ripemdSS[j])
		aa, ddd, cc, bb = ddd, cc, bb, t
		// Exchange one register between the lines after each round.
		switch j {
		case 15:
			a, aa = aa, a
		case 31:
			b, bb = bb, b
		case 47:
			c, cc = cc, c
		case 63:
			dd, ddd = ddd, dd
		}
	}
	d.h[0] += a
	d.h[1] += b
	d.h[2] += c
	d.h[3] += dd
	d.h[4] += aa
	d.h[5] += bb
	d.h[6] += cc
	d.h[7] += ddd
}

func (d *ripemdDigest) block320(x *[16]uint32) {
	a, b, c, dd, e := d.h[0], d.h[1], d.h[2], d.h[3], d.h[4]
	aa, bb, cc, ddd, ee := d.h[5], d.h[6], d.h[7], d.h[8], d.h[9]
	for j := 0; j < 80; j++ {
		t := bits.RotateLeft32(a+ripemdF(j, b, c, dd)+x[ripemdR[j]]+ripemdK[j/16], ripemdS[j]) + e
		a, e, dd, c, b = e, dd, bits.RotateLeft32(c, 10), b, t
		t = bits.RotateLeft32(aa+ripemdF(79-j, bb, cc, ddd)+x[ripemdRR[j]]+ripemdKK160[j/16], ripemdSS[j]) + ee
		aa, ee, ddd, cc, bb = ee, ddd, bits.RotateLeft32(cc, 10), bb, t
		switch j {
		case 15:
			b, bb = bb, b
		case 31:
			dd, ddd = ddd, dd
		case 47:
			a, aa = aa, a
		case 63:
			c, cc = cc, c
		case 79:
			e, ee = ee, e
		}
	}
	d.h[0] += a
	d.h[1] += b
	d.h[2] += c
	d.h[3] += dd
	d.h[4] += e
	d.h[5] += aa
	d.h[6] += bb
	d.h[7] += cc
	d.h[8] += ddd
	d.h[9] += ee
}

func (d *ripemdDigest) Sum(in []byte) []byte {
	cp := *d
	msgLen := cp.len
	var pad [64 + 8]byte
	pad[0] = 0x80
	padLen := 56 - int(msgLen%64)
	if padLen <= 0 {
		padLen += 64
	}
	binary.LittleEndian.PutUint64(pad[padLen:], msgLen<<3)
	cp.Write(pad[:padLen+8]) //nolint:errcheck // cannot fail

	out := make([]byte, cp.Size())
	for i := 0; i < cp.Size()/4; i++ {
		binary.LittleEndian.PutUint32(out[i*4:], cp.h[i])
	}
	return append(in, out...)
}
