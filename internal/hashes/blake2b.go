package hashes

import (
	"encoding/binary"
	"hash"
	"math/bits"
)

// Blake2bSize is the digest size of the registered BLAKE2b-512 variant.
const Blake2bSize = 64

// blake2b implements unkeyed BLAKE2b (RFC 7693) with a configurable
// digest size.

var blake2bIV = [8]uint64{
	0x6a09e667f3bcc908, 0xbb67ae8584caa73b, 0x3c6ef372fe94f82b, 0xa54ff53a5f1d36f1,
	0x510e527fade682d1, 0x9b05688c2b3e6c1f, 0x1f83d9abfb41bd6b, 0x5be0cd19137e2179,
}

var blake2bSigma = [10][16]byte{
	{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15},
	{14, 10, 4, 8, 9, 15, 13, 6, 1, 12, 0, 2, 11, 7, 5, 3},
	{11, 8, 12, 0, 5, 2, 15, 13, 10, 14, 3, 6, 7, 1, 9, 4},
	{7, 9, 3, 1, 13, 12, 11, 14, 2, 6, 5, 10, 4, 0, 15, 8},
	{9, 0, 5, 7, 2, 4, 10, 15, 14, 1, 11, 12, 6, 8, 3, 13},
	{2, 12, 6, 10, 0, 11, 8, 3, 4, 13, 7, 5, 15, 14, 1, 9},
	{12, 5, 1, 15, 14, 13, 4, 10, 0, 7, 6, 3, 9, 2, 8, 11},
	{13, 11, 7, 14, 12, 1, 3, 9, 5, 0, 15, 4, 8, 6, 2, 10},
	{6, 15, 14, 9, 11, 3, 0, 8, 12, 2, 13, 7, 1, 4, 10, 5},
	{10, 2, 8, 4, 7, 6, 1, 5, 15, 11, 9, 14, 3, 12, 13, 0},
}

type blake2bDigest struct {
	h       [8]uint64
	t       uint64 // byte counter (low word; high word unused at our sizes)
	buf     [128]byte
	n       int
	outSize int
}

// NewBlake2b512 returns a new unkeyed BLAKE2b-512 hash.
func NewBlake2b512() hash.Hash { return NewBlake2b(64) }

// NewBlake2b returns a new unkeyed BLAKE2b hash with the given digest
// size in bytes (1..64).
func NewBlake2b(size int) hash.Hash {
	if size < 1 || size > 64 {
		panic("hashes: invalid BLAKE2b digest size")
	}
	d := &blake2bDigest{outSize: size}
	d.Reset()
	return d
}

func (d *blake2bDigest) Size() int      { return d.outSize }
func (d *blake2bDigest) BlockSize() int { return 128 }

func (d *blake2bDigest) Reset() {
	d.h = blake2bIV
	// Parameter block word 0: digest length, key length 0, fanout 1,
	// depth 1.
	d.h[0] ^= 0x01010000 ^ uint64(d.outSize)
	d.t = 0
	d.n = 0
}

func (d *blake2bDigest) Write(p []byte) (int, error) {
	written := len(p)
	for len(p) > 0 {
		// A full buffer may only be compressed once we know more data
		// follows: the final block carries the last-block flag.
		if d.n == 128 {
			d.t += 128
			d.compress(false)
			d.n = 0
		}
		space := 128 - d.n
		if space > len(p) {
			space = len(p)
		}
		copy(d.buf[d.n:], p[:space])
		d.n += space
		p = p[space:]
	}
	return written, nil
}

func (d *blake2bDigest) compress(last bool) {
	var m [16]uint64
	for i := range m {
		m[i] = binary.LittleEndian.Uint64(d.buf[i*8:])
	}
	var v [16]uint64
	copy(v[:8], d.h[:])
	copy(v[8:], blake2bIV[:])
	v[12] ^= d.t
	if last {
		v[14] = ^v[14]
	}

	g := func(a, b, c, d4 int, x, y uint64) {
		v[a] = v[a] + v[b] + x
		v[d4] = bits.RotateLeft64(v[d4]^v[a], -32)
		v[c] = v[c] + v[d4]
		v[b] = bits.RotateLeft64(v[b]^v[c], -24)
		v[a] = v[a] + v[b] + y
		v[d4] = bits.RotateLeft64(v[d4]^v[a], -16)
		v[c] = v[c] + v[d4]
		v[b] = bits.RotateLeft64(v[b]^v[c], -63)
	}

	for r := 0; r < 12; r++ {
		s := &blake2bSigma[r%10]
		g(0, 4, 8, 12, m[s[0]], m[s[1]])
		g(1, 5, 9, 13, m[s[2]], m[s[3]])
		g(2, 6, 10, 14, m[s[4]], m[s[5]])
		g(3, 7, 11, 15, m[s[6]], m[s[7]])
		g(0, 5, 10, 15, m[s[8]], m[s[9]])
		g(1, 6, 11, 12, m[s[10]], m[s[11]])
		g(2, 7, 8, 13, m[s[12]], m[s[13]])
		g(3, 4, 9, 14, m[s[14]], m[s[15]])
	}

	for i := 0; i < 8; i++ {
		d.h[i] ^= v[i] ^ v[i+8]
	}
}

func (d *blake2bDigest) Sum(in []byte) []byte {
	cp := *d
	cp.t += uint64(cp.n)
	for i := cp.n; i < 128; i++ {
		cp.buf[i] = 0
	}
	cp.compress(true)

	out := make([]byte, 64)
	for i, v := range cp.h {
		binary.LittleEndian.PutUint64(out[i*8:], v)
	}
	return append(in, out[:cp.outSize]...)
}
