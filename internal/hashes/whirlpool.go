package hashes

import (
	"encoding/binary"
	"hash"
)

// WhirlpoolSize is the digest size of Whirlpool in bytes.
const WhirlpoolSize = 64

// Whirlpool (ISO/IEC 10118-3) is a 512-bit hash built from a dedicated
// 8x8-byte block cipher in Miyaguchi-Preneel mode. Rather than transcribing
// the 256-entry S-box, we generate it from the specification's mini-box
// network (E, E⁻¹ and R 4-bit boxes), which whirlpool_test.go cross-checks
// against the published first entries and official test vectors.

// The two published 4-bit mini-boxes.
var whirlE = [16]byte{0x1, 0xB, 0x9, 0xC, 0xD, 0x6, 0xF, 0x3, 0xE, 0x8, 0x7, 0x4, 0xA, 0x2, 0x5, 0x0}
var whirlR = [16]byte{0x7, 0xC, 0xB, 0xD, 0xE, 0x4, 0x9, 0xF, 0x6, 0x3, 0x8, 0xA, 0x2, 0x5, 0x1, 0x0}

// whirlSbox is the full byte substitution generated from the mini-boxes.
var whirlSbox = func() (s [256]byte) {
	var einv [16]byte
	for i, v := range whirlE {
		einv[v] = byte(i)
	}
	for x := 0; x < 256; x++ {
		hi := whirlE[x>>4]
		lo := einv[x&0xF]
		y := whirlR[hi^lo]
		s[x] = whirlE[hi^y]<<4 | einv[lo^y]
	}
	return s
}()

// whirlMul multiplies in GF(2^8) with Whirlpool's reduction polynomial
// x^8 + x^4 + x^3 + x^2 + 1 (0x11D).
func whirlMul(a, b byte) byte {
	var p byte
	for b != 0 {
		if b&1 != 0 {
			p ^= a
		}
		carry := a & 0x80
		a <<= 1
		if carry != 0 {
			a ^= 0x1D
		}
		b >>= 1
	}
	return p
}

// whirlC is the first row of the circulant diffusion matrix.
var whirlC = [8]byte{1, 1, 4, 1, 8, 5, 2, 9}

type whirlState [8][8]byte

// whirlRound applies one full round (SubBytes, ShiftColumns, MixRows,
// AddRoundKey) to st.
func whirlRound(st *whirlState, key *whirlState) {
	// gamma: SubBytes.
	for i := range st {
		for j := range st[i] {
			st[i][j] = whirlSbox[st[i][j]]
		}
	}
	// pi: shift column j downwards by j positions.
	var shifted whirlState
	for i := 0; i < 8; i++ {
		for j := 0; j < 8; j++ {
			shifted[(i+j)%8][j] = st[i][j]
		}
	}
	// theta: MixRows, M' = M * C with C[k][j] = c[(j-k) mod 8].
	var mixed whirlState
	for i := 0; i < 8; i++ {
		for j := 0; j < 8; j++ {
			var acc byte
			for k := 0; k < 8; k++ {
				acc ^= whirlMul(shifted[i][k], whirlC[(j-k+8)%8])
			}
			mixed[i][j] = acc
		}
	}
	// sigma: AddRoundKey.
	for i := 0; i < 8; i++ {
		for j := 0; j < 8; j++ {
			mixed[i][j] ^= key[i][j]
		}
	}
	*st = mixed
}

// whirlCompress is the Miyaguchi-Preneel compression: H' = E_H(m) ^ H ^ m.
func whirlCompress(h *whirlState, m *whirlState) {
	key := *h
	st := *m
	for i := 0; i < 8; i++ {
		for j := 0; j < 8; j++ {
			st[i][j] ^= key[i][j]
		}
	}
	for r := 1; r <= 10; r++ {
		// Round constant: row 0 from consecutive S-box entries.
		var rc whirlState
		for j := 0; j < 8; j++ {
			rc[0][j] = whirlSbox[8*(r-1)+j]
		}
		whirlRound(&key, &rc)
		whirlRound(&st, &key)
	}
	for i := 0; i < 8; i++ {
		for j := 0; j < 8; j++ {
			h[i][j] ^= st[i][j] ^ m[i][j]
		}
	}
}

// whirlpoolDigest implements hash.Hash for Whirlpool.
type whirlpoolDigest struct {
	h   whirlState
	buf [64]byte
	n   int
	len uint64 // total bytes; 2^64 bytes is far beyond any use here
}

// NewWhirlpool returns a new Whirlpool hash.
func NewWhirlpool() hash.Hash { return new(whirlpoolDigest) }

func (d *whirlpoolDigest) Size() int      { return WhirlpoolSize }
func (d *whirlpoolDigest) BlockSize() int { return 64 }

func (d *whirlpoolDigest) Reset() { *d = whirlpoolDigest{} }

func (d *whirlpoolDigest) Write(p []byte) (int, error) {
	written := len(p)
	d.len += uint64(written)
	for len(p) > 0 {
		space := 64 - d.n
		if space > len(p) {
			space = len(p)
		}
		copy(d.buf[d.n:], p[:space])
		d.n += space
		p = p[space:]
		if d.n == 64 {
			d.block(d.buf[:])
			d.n = 0
		}
	}
	return written, nil
}

func (d *whirlpoolDigest) block(p []byte) {
	var m whirlState
	for i := 0; i < 64; i++ {
		m[i/8][i%8] = p[i]
	}
	whirlCompress(&d.h, &m)
}

func (d *whirlpoolDigest) Sum(in []byte) []byte {
	cp := *d
	bitLen := cp.len * 8
	// Pad with 0x80, zeros, and a 256-bit big-endian length. The length
	// occupies the last 32 bytes of the final block.
	var pad [128]byte
	pad[0] = 0x80
	padLen := 32 - int(cp.len%64) // distance to the length field
	if padLen <= 0 {
		padLen += 64
	}
	lenField := make([]byte, 32)
	binary.BigEndian.PutUint64(lenField[24:], bitLen)
	cp.Write(pad[:padLen]) //nolint:errcheck // cannot fail
	cp.Write(lenField)     //nolint:errcheck // cannot fail

	out := make([]byte, WhirlpoolSize)
	for i := 0; i < 64; i++ {
		out[i] = cp.h[i/8][i%8]
	}
	return append(in, out...)
}
