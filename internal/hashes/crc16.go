package hashes

import "hash"

// CRC-16/ARC: polynomial 0x8005 (reflected 0xA001), zero initial value,
// no final XOR. This is the variant Python's crcmod and the paper's
// tooling call plain "crc16".

// crc16Table is the reflected lookup table for polynomial 0xA001.
var crc16Table = func() (t [256]uint16) {
	for i := range t {
		crc := uint16(i)
		for b := 0; b < 8; b++ {
			if crc&1 != 0 {
				crc = crc>>1 ^ 0xA001
			} else {
				crc >>= 1
			}
		}
		t[i] = crc
	}
	return t
}()

type crc16Digest uint16

// NewCRC16 returns a new CRC-16/ARC checksum as a hash.Hash with a
// 2-byte, big-endian Sum.
func NewCRC16() hash.Hash { return new(crc16Digest) }

func (d *crc16Digest) Size() int      { return 2 }
func (d *crc16Digest) BlockSize() int { return 1 }
func (d *crc16Digest) Reset()         { *d = 0 }

func (d *crc16Digest) Write(p []byte) (int, error) {
	crc := uint16(*d)
	for _, b := range p {
		crc = crc>>8 ^ crc16Table[byte(crc)^b]
	}
	*d = crc16Digest(crc)
	return len(p), nil
}

func (d *crc16Digest) Sum(in []byte) []byte {
	return append(in, byte(*d>>8), byte(*d))
}

// CRC16 computes the CRC-16/ARC value of data.
func CRC16(data []byte) uint16 {
	var d crc16Digest
	d.Write(data) //nolint:errcheck // cannot fail
	return uint16(d)
}
