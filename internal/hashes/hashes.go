// Package hashes implements every hash and checksum function the paper's
// leak-detection candidate set uses (§3.1 and the appendix list), on top of
// the Go standard library only.
//
// Functions that ship with the standard library (MD5, SHA-1, the SHA-2
// family, CRC-32, Adler-32) are registered as thin wrappers; everything else
// — MD2, MD4, the RIPEMD family, the SHA-3 family, Whirlpool, BLAKE2b,
// Snefru and CRC-16 — is implemented from scratch in this package.
//
// All functions are exposed through a uniform registry so that the PII
// candidate-token generator and the leak injector share byte-identical
// transforms:
//
//	sum, err := hashes.Sum("sha3_256", []byte("foo@mydom.com"))
//
// Every digest implements hash.Hash and is safe to reuse after Reset.
package hashes

import (
	"crypto/md5"
	"crypto/sha1"
	"crypto/sha256"
	"crypto/sha512"
	"encoding/hex"
	"fmt"
	"hash"
	"hash/adler32"
	"hash/crc32"
	"sort"
)

// Func describes one registered hash function.
type Func struct {
	// Name is the registry key, matching the paper's appendix naming
	// (lower case, underscores: "sha3_256", "ripemd_160", ...).
	Name string
	// Size is the digest length in bytes.
	Size int
	// New returns a fresh hash.Hash computing this function.
	New func() hash.Hash
}

// Sum computes the digest of data with this function.
func (f Func) Sum(data []byte) []byte {
	h := f.New()
	h.Write(data)
	return h.Sum(nil)
}

// HexSum computes the lower-case hexadecimal digest of data, which is the
// form trackers overwhelmingly transmit (§4.2.2).
func (f Func) HexSum(data []byte) string {
	return hex.EncodeToString(f.Sum(data))
}

var registry = map[string]Func{}

func register(name string, size int, ctor func() hash.Hash) {
	if _, dup := registry[name]; dup {
		panic("hashes: duplicate registration of " + name)
	}
	registry[name] = Func{Name: name, Size: size, New: ctor}
}

func init() {
	// Standard-library backed functions.
	register("md5", md5.Size, md5.New)
	register("sha1", sha1.Size, sha1.New)
	register("sha224", sha256.Size224, sha256.New224)
	register("sha256", sha256.Size, sha256.New)
	register("sha384", sha512.Size384, sha512.New384)
	register("sha512", sha512.Size, sha512.New)
	register("crc32", 4, func() hash.Hash { return hash32Adapter{crc32.NewIEEE()} })
	register("adler32", 4, func() hash.Hash { return hash32Adapter{adler32.New()} })

	// From-scratch implementations (this package).
	register("md2", MD2Size, NewMD2)
	register("md4", MD4Size, NewMD4)
	register("crc16", 2, NewCRC16)
	register("ripemd_128", 16, NewRIPEMD128)
	register("ripemd_160", 20, NewRIPEMD160)
	register("ripemd_256", 32, NewRIPEMD256)
	register("ripemd_320", 40, NewRIPEMD320)
	register("sha3_224", 28, NewSHA3_224)
	register("sha3_256", 32, NewSHA3_256)
	register("sha3_384", 48, NewSHA3_384)
	register("sha3_512", 64, NewSHA3_512)
	register("whirlpool", WhirlpoolSize, NewWhirlpool)
	register("blake2b", Blake2bSize, NewBlake2b512)
	register("snefru128", 16, NewSnefru128)
	register("snefru256", 32, NewSnefru256)
}

// Lookup returns the registered function with the given name.
func Lookup(name string) (Func, bool) {
	f, ok := registry[name]
	return f, ok
}

// Sum computes the named digest of data. It returns an error for unknown
// names so callers can surface configuration typos instead of panicking.
func Sum(name string, data []byte) ([]byte, error) {
	f, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("hashes: unknown function %q", name)
	}
	return f.Sum(data), nil
}

// HexSum computes the named digest of data in lower-case hex.
func HexSum(name string, data []byte) (string, error) {
	b, err := Sum(name, data)
	if err != nil {
		return "", err
	}
	return hex.EncodeToString(b), nil
}

// Names returns all registered function names in sorted order.
func Names() []string {
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// hash32Adapter exposes a hash.Hash32 (CRC-32, Adler-32) as a plain
// hash.Hash; the Sum forms already match, this only narrows the interface.
type hash32Adapter struct {
	hash.Hash32
}
