package hashes

import (
	"encoding/binary"
	"hash"
	"math/bits"
)

// MD4Size is the digest size of MD4 in bytes.
const MD4Size = 16

// md4Digest implements MD4 (RFC 1320).
type md4Digest struct {
	s   [4]uint32
	buf [64]byte
	n   int
	len uint64
}

// NewMD4 returns a new MD4 hash.
func NewMD4() hash.Hash { d := new(md4Digest); d.Reset(); return d }

func (d *md4Digest) Size() int      { return MD4Size }
func (d *md4Digest) BlockSize() int { return 64 }

func (d *md4Digest) Reset() {
	d.s = [4]uint32{0x67452301, 0xefcdab89, 0x98badcfe, 0x10325476}
	d.n = 0
	d.len = 0
}

func (d *md4Digest) Write(p []byte) (int, error) {
	written := len(p)
	d.len += uint64(written)
	for len(p) > 0 {
		space := 64 - d.n
		if space > len(p) {
			space = len(p)
		}
		copy(d.buf[d.n:], p[:space])
		d.n += space
		p = p[space:]
		if d.n == 64 {
			d.block(d.buf[:])
			d.n = 0
		}
	}
	return written, nil
}

func (d *md4Digest) block(p []byte) {
	var x [16]uint32
	for i := range x {
		x[i] = binary.LittleEndian.Uint32(p[i*4:])
	}
	a, b, c, d4 := d.s[0], d.s[1], d.s[2], d.s[3]

	// Round 1: F(x,y,z) = (x AND y) OR (NOT x AND z)
	f := func(x, y, z uint32) uint32 { return (x & y) | (^x & z) }
	for _, i := range []int{0, 4, 8, 12} {
		a = bits.RotateLeft32(a+f(b, c, d4)+x[i], 3)
		d4 = bits.RotateLeft32(d4+f(a, b, c)+x[i+1], 7)
		c = bits.RotateLeft32(c+f(d4, a, b)+x[i+2], 11)
		b = bits.RotateLeft32(b+f(c, d4, a)+x[i+3], 19)
	}
	// Round 2: G(x,y,z) = (x AND y) OR (x AND z) OR (y AND z), +0x5a827999
	g := func(x, y, z uint32) uint32 { return (x & y) | (x & z) | (y & z) }
	for _, i := range []int{0, 1, 2, 3} {
		a = bits.RotateLeft32(a+g(b, c, d4)+x[i]+0x5a827999, 3)
		d4 = bits.RotateLeft32(d4+g(a, b, c)+x[i+4]+0x5a827999, 5)
		c = bits.RotateLeft32(c+g(d4, a, b)+x[i+8]+0x5a827999, 9)
		b = bits.RotateLeft32(b+g(c, d4, a)+x[i+12]+0x5a827999, 13)
	}
	// Round 3: H(x,y,z) = x XOR y XOR z, +0x6ed9eba1
	h := func(x, y, z uint32) uint32 { return x ^ y ^ z }
	for _, i := range []int{0, 2, 1, 3} {
		a = bits.RotateLeft32(a+h(b, c, d4)+x[i]+0x6ed9eba1, 3)
		d4 = bits.RotateLeft32(d4+h(a, b, c)+x[i+8]+0x6ed9eba1, 9)
		c = bits.RotateLeft32(c+h(d4, a, b)+x[i+4]+0x6ed9eba1, 11)
		b = bits.RotateLeft32(b+h(c, d4, a)+x[i+12]+0x6ed9eba1, 15)
	}

	d.s[0] += a
	d.s[1] += b
	d.s[2] += c
	d.s[3] += d4
}

func (d *md4Digest) Sum(in []byte) []byte {
	cp := *d
	msgLen := cp.len
	// Padding: 0x80 then zeros until length ≡ 56 mod 64, then 8-byte
	// little-endian bit length.
	var pad [64 + 8]byte
	pad[0] = 0x80
	padLen := 56 - int(msgLen%64)
	if padLen <= 0 {
		padLen += 64
	}
	binary.LittleEndian.PutUint64(pad[padLen:], msgLen<<3)
	cp.Write(pad[:padLen+8]) //nolint:errcheck // cannot fail

	var out [MD4Size]byte
	for i, v := range cp.s {
		binary.LittleEndian.PutUint32(out[i*4:], v)
	}
	return append(in, out[:]...)
}
