package crawler

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"piileak/internal/browser"
	"piileak/internal/webgen"
)

// A Checkpoint persists per-site crawl progress as JSON lines: one
// header identifying the run, then one self-contained line per finished
// site (crawl record, mail, shield blocks). Each line is written and
// synced whole, so a killed run loses at most the site in flight; on
// resume the file is validated against the ecosystem, any torn trailing
// line from the crash is dropped, and the surviving prefix is rewritten
// atomically (temp file + rename) before new progress is appended.
type Checkpoint struct {
	mu      sync.Mutex
	f       *os.File
	path    string
	entries map[string]crawlEntry
	order   []string // on-disk entry sequence, for the resume rewrite
	torn    int      // non-empty lines dropped on load (crash-torn tail)
	appends int      // lines appended this run, for the failpoint
	closed  bool
}

// CheckpointFailpoint, when non-nil, is invoked around every checkpoint
// append with an event name ("pre" before the line is written, "mid"
// after only its first half reached the file, "post" after the synced
// write) and the 1-based append count. The torture harness uses it to
// kill the process at precise points; with the hook installed the line
// is written in two halves so a "mid" kill leaves a genuinely torn
// record on disk. Test-only; leave nil in production code.
var CheckpointFailpoint func(event string, appends int)

// checkpointHeader pins a checkpoint to one run: resuming under a
// different seed, site population, browser or shard scope silently
// mixes datasets, so it is refused instead. Shard is the "i/K" label of
// a sharded study's failure domain ("" for unsharded runs) — a shard
// checkpoint resumed by a different shard, or an unsharded checkpoint
// resumed by a sharded run, is a header mismatch, not silent data
// corruption.
type checkpointHeader struct {
	Version int    `json:"version"`
	Browser string `json:"browser"`
	Seed    uint64 `json:"seed"`
	Sites   int    `json:"sites"`
	Shard   string `json:"shard,omitempty"`
}

const checkpointVersion = 1

func headerFor(eco *webgen.Ecosystem, profile browser.Profile, shard string) checkpointHeader {
	return checkpointHeader{
		Version: checkpointVersion,
		Browser: profile.Name + " " + profile.Version,
		Seed:    eco.Config.Seed,
		Sites:   eco.Config.ShoppingSites,
		Shard:   shard,
	}
}

// CheckpointShard peeks at a checkpoint file's header and reports the
// shard label it was written under ("" = unsharded). found is false
// when the file does not exist or its header line is unreadable — the
// caller cannot conclude anything about such a file beyond "not a
// valid checkpoint".
func CheckpointShard(path string) (shard string, found bool, err error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return "", false, nil
	}
	if err != nil {
		return "", false, fmt.Errorf("crawler: checkpoint %s: %w", path, err)
	}
	line, _, _ := bytes.Cut(data, []byte("\n"))
	var hdr checkpointHeader
	if json.Unmarshal(line, &hdr) != nil || hdr.Version == 0 {
		return "", false, nil
	}
	return hdr.Shard, true, nil
}

// OpenCheckpoint opens a checkpoint file for a run. With resume set and
// an existing file, completed entries are loaded (and the file's torn
// tail, if any, discarded); otherwise the file is created fresh. shard
// is the run's "i/K" shard label ("" for unsharded runs) — resuming
// across shard scopes is refused via the header check.
func OpenCheckpoint(path string, eco *webgen.Ecosystem, profile browser.Profile, resume bool, shard string) (*Checkpoint, error) {
	c := &Checkpoint{path: path, entries: map[string]crawlEntry{}}
	want := headerFor(eco, profile, shard)

	if resume {
		if err := c.load(want); err != nil {
			return nil, err
		}
	}

	// Rewrite header + surviving entries to a temp file and rename:
	// this truncates any torn tail atomically and leaves the file ready
	// for whole-line appends. A fresh (non-resume) open is the same
	// write with zero entries.
	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp-*")
	if err != nil {
		return nil, fmt.Errorf("crawler: checkpoint %s: %w", path, err)
	}
	w := bufio.NewWriter(tmp)
	fail := func(err error) (*Checkpoint, error) {
		tmp.Close()
		os.Remove(tmp.Name())
		return nil, fmt.Errorf("crawler: checkpoint %s: %w", path, err)
	}
	if err := writeLine(w, want); err != nil {
		return fail(err)
	}
	for _, domain := range c.order {
		if err := writeLine(w, c.entries[domain]); err != nil {
			return fail(err)
		}
	}
	if err := w.Flush(); err != nil {
		return fail(err)
	}
	if err := tmp.Sync(); err != nil {
		return fail(err)
	}
	if err := tmp.Close(); err != nil {
		return fail(err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fail(err)
	}

	c.f, err = os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("crawler: checkpoint %s: %w", path, err)
	}
	return c, nil
}

func writeLine(w *bufio.Writer, v any) error {
	line, err := json.Marshal(v)
	if err != nil {
		return err
	}
	line = append(line, '\n')
	_, err = w.Write(line)
	return err
}

// load reads an existing checkpoint, validating the header and keeping
// every intact entry line. A missing file is an empty checkpoint; a
// malformed line ends the readable prefix (crash-torn tail).
func (c *Checkpoint) load(want checkpointHeader) error {
	data, err := os.ReadFile(c.path)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("crawler: checkpoint %s: %w", c.path, err)
	}
	lines := bytes.Split(data, []byte("\n"))
	if len(lines) == 0 || len(bytes.TrimSpace(lines[0])) == 0 {
		return nil // empty file: treat as fresh
	}
	var hdr checkpointHeader
	if err := json.Unmarshal(lines[0], &hdr); err != nil {
		return fmt.Errorf("crawler: checkpoint %s: malformed header: %w", c.path, err)
	}
	if hdr != want {
		return fmt.Errorf("crawler: checkpoint %s: written for %s seed=%d sites=%d shard=%q, resume requested for %s seed=%d sites=%d shard=%q",
			c.path, hdr.Browser, hdr.Seed, hdr.Sites, hdr.Shard, want.Browser, want.Seed, want.Sites, want.Shard)
	}
	rest := lines[1:]
	for li, line := range rest {
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		var e crawlEntry
		if err := json.Unmarshal(line, &e); err != nil || e.Crawl.Domain == "" {
			// A torn tail from a killed run: everything before it is
			// good, the in-flight site re-crawls. Count what is being
			// dropped so the resume summary can report it instead of
			// discarding data silently.
			for _, dropped := range rest[li:] {
				if len(bytes.TrimSpace(dropped)) > 0 {
					c.torn++
				}
			}
			break
		}
		if _, dup := c.entries[e.Crawl.Domain]; dup {
			return fmt.Errorf("crawler: checkpoint %s: duplicate site %q", c.path, e.Crawl.Domain)
		}
		c.entries[e.Crawl.Domain] = e
		c.order = append(c.order, e.Crawl.Domain)
	}
	return nil
}

// TornRecords reports how many non-empty lines the load dropped as a
// crash-torn tail. Safe on a nil receiver.
func (c *Checkpoint) TornRecords() int {
	if c == nil {
		return 0
	}
	return c.torn
}

// lookup returns a completed site's entry. Safe on a nil receiver — the
// no-checkpoint crawl path — and for concurrent use: the streaming
// feeder looks sites up while workers Append freshly crawled ones.
func (c *Checkpoint) lookup(domain string) (crawlEntry, bool) {
	if c == nil {
		return crawlEntry{}, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[domain]
	return e, ok
}

// Done reports how many sites the checkpoint already holds.
func (c *Checkpoint) Done() int {
	if c == nil {
		return 0
	}
	return len(c.entries)
}

// Append persists one finished site. The line is written whole and
// synced before Append returns, so progress survives a kill.
func (c *Checkpoint) Append(e crawlEntry) error {
	line, err := json.Marshal(e)
	if err != nil {
		return fmt.Errorf("crawler: checkpoint %s: %w", c.path, err)
	}
	line = append(line, '\n')
	c.mu.Lock()
	defer c.mu.Unlock()
	c.appends++
	if fp := CheckpointFailpoint; fp != nil {
		// Torture mode: write the line in two unbuffered halves with a
		// hook between them, so a kill at "mid" tears the record on
		// disk exactly the way a real crash mid-write would.
		fp("pre", c.appends)
		half := len(line) / 2
		if _, err := c.f.Write(line[:half]); err != nil {
			return fmt.Errorf("crawler: checkpoint %s: %w", c.path, err)
		}
		fp("mid", c.appends)
		if _, err := c.f.Write(line[half:]); err != nil {
			return fmt.Errorf("crawler: checkpoint %s: %w", c.path, err)
		}
	} else if _, err := c.f.Write(line); err != nil {
		return fmt.Errorf("crawler: checkpoint %s: %w", c.path, err)
	}
	if err := c.f.Sync(); err != nil {
		return fmt.Errorf("crawler: checkpoint %s: %w", c.path, err)
	}
	if fp := CheckpointFailpoint; fp != nil {
		fp("post", c.appends)
	}
	c.entries[e.Crawl.Domain] = e
	c.order = append(c.order, e.Crawl.Domain)
	return nil
}

// Close releases the file; it is idempotent so a deferred Close after
// an explicit one is harmless.
func (c *Checkpoint) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil
	}
	c.closed = true
	if err := c.f.Close(); err != nil {
		return fmt.Errorf("crawler: checkpoint %s: %w", c.path, err)
	}
	return nil
}
