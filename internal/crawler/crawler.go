// Package crawler orchestrates the §3.2 data acquisition flow against
// the synthetic ecosystem, exactly as the paper's operator did by hand:
// visit the homepage, fill and submit the sign-up form, follow the
// e-mailed confirmation link when required, sign in, reload the
// logged-in page, and click through to a product subpage — recording
// every HTTP request, response and cookie along the way.
package crawler

import (
	"compress/gzip"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"piileak/internal/browser"
	"piileak/internal/dnssim"
	"piileak/internal/httpmodel"
	"piileak/internal/mailbox"
	"piileak/internal/pii"
	"piileak/internal/site"
	"piileak/internal/webgen"
)

// Outcome summarizes one site's crawl result for the funnel accounting.
type Outcome string

// Crawl outcomes (§3.2's funnel).
const (
	OutcomeSuccess       Outcome = "success"
	OutcomeUnreachable   Outcome = "unreachable"
	OutcomeNoAuthFlow    Outcome = "no_auth_flow"
	OutcomeSignupBlocked Outcome = "signup_blocked"  // phone / ID / region policies
	OutcomeCaptcha       Outcome = "captcha_blocked" // Brave shields broke the CAPTCHA
	// OutcomePartial marks a crawl the resilient runtime abandoned
	// mid-flow: the site was reached, but a later navigation kept
	// failing after retries (or its circuit opened), so the record
	// carries only the traffic up to the broken step instead of
	// dropping the site outright.
	OutcomePartial Outcome = "partial"
	// OutcomeTimeout marks a site that exceeded its watchdog budget
	// (Options.SiteTimeout): the flow was cut off at the deadline and
	// the record keeps the partial captures up to that point.
	OutcomeTimeout Outcome = "timeout"
	// OutcomeCrashed marks a site whose crawl or detection panicked.
	// The panic is recovered, the site is quarantined with a
	// diagnostics bundle, and the study continues without it.
	OutcomeCrashed Outcome = "crashed"
)

// SiteCrawl is the captured traffic of one site visit.
type SiteCrawl struct {
	Domain   string             `json:"domain"`
	Rank     int                `json:"rank"`
	Outcome  Outcome            `json:"outcome"`
	Obstacle site.Obstacle      `json:"obstacle,omitempty"`
	Records  []httpmodel.Record `json:"records,omitempty"`
	// EmailConfirm and BotDetection echo the site's flow properties.
	EmailConfirm bool `json:"email_confirm,omitempty"`
	BotDetection bool `json:"bot_detection,omitempty"`
	// Attempts, Retries and FailedFetches are the resilient runtime's
	// accounting under fault injection: total fetch attempts (including
	// retries), backoff retries among them, and requests that stayed
	// undelivered after the retry/breaker budget. All zero — and absent
	// from the JSON — on fault-free crawls.
	Attempts      int `json:"attempts,omitempty"`
	Retries       int `json:"retries,omitempty"`
	FailedFetches int `json:"failed_fetches,omitempty"`
}

// Dataset is a full collection run. It is self-contained: the persona
// and the DNS CNAME view travel with the records, so detection can run
// from the JSON alone.
type Dataset struct {
	Browser string           `json:"browser"`
	Persona pii.Persona      `json:"persona"`
	Crawls  []SiteCrawl      `json:"crawls"`
	Mailbox *mailbox.Mailbox `json:"mailbox,omitempty"`
	Blocked map[string]int   `json:"blocked,omitempty"` // per-receiver shield blocks
	// CNAMEs is the DNS view (host -> target) captured during the
	// crawl, for CNAME-cloaking classification.
	CNAMEs map[string]string `json:"cnames,omitempty"`
}

// Zone rebuilds the DNS zone from the dataset's CNAME view.
func (d *Dataset) Zone() *dnssim.Zone {
	z := dnssim.NewZone()
	for host, target := range d.CNAMEs {
		z.AddCNAME(host, target)
	}
	return z
}

// Successes returns the crawls that completed the auth flow.
func (d *Dataset) Successes() []*SiteCrawl {
	var out []*SiteCrawl
	for i := range d.Crawls {
		if d.Crawls[i].Outcome == OutcomeSuccess {
			out = append(out, &d.Crawls[i])
		}
	}
	return out
}

// FunnelCounts tallies outcomes.
func (d *Dataset) FunnelCounts() map[Outcome]int {
	out := map[Outcome]int{}
	for _, c := range d.Crawls {
		out[c.Outcome]++
	}
	return out
}

// TotalRecords counts captured requests.
func (d *Dataset) TotalRecords() int {
	n := 0
	for _, c := range d.Crawls {
		n += len(c.Records)
	}
	return n
}

// WriteJSON serializes the dataset.
func (d *Dataset) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(d)
}

// ReadJSON deserializes a dataset and validates its shape: every site
// appears at most once (a resumed or merged run that duplicated a
// domain would silently double-count leaks downstream).
func ReadJSON(r io.Reader) (*Dataset, error) {
	d, err := decodeDataset(r)
	if err != nil {
		return nil, fmt.Errorf("crawler: %w", err)
	}
	return d, nil
}

func decodeDataset(r io.Reader) (*Dataset, error) {
	var d Dataset
	if err := json.NewDecoder(r).Decode(&d); err != nil {
		return nil, fmt.Errorf("decoding dataset: %w", err)
	}
	seen := make(map[string]bool, len(d.Crawls))
	for _, c := range d.Crawls {
		if seen[c.Domain] {
			return nil, fmt.Errorf("corrupt dataset: duplicate site domain %q", c.Domain)
		}
		seen[c.Domain] = true
	}
	return &d, nil
}

// Crawl runs the full §3.2 flow over every candidate site with the given
// browser profile and returns the dataset.
//
// Deprecated: use Run. Crawl survives as a thin wrapper for one
// release, pinned byte-identical to Run with no options.
func Crawl(eco *webgen.Ecosystem, profile browser.Profile) *Dataset {
	// Without a checkpoint or cancellation the serial loop cannot fail.
	//lint:allow ctxflow convenience API without cancellation; Run is the ctx-taking surface
	ds, _ := Run(context.Background(), eco, profile)
	return ds
}

// CrawlSenders re-crawls only the leaking first parties — the §7.1
// browser evaluation's workload.
//
// Deprecated: use Run with WithSites(eco.SenderSites). CrawlSenders
// survives as a thin wrapper for one release.
func CrawlSenders(eco *webgen.Ecosystem, profile browser.Profile) *Dataset {
	//lint:allow ctxflow convenience API without cancellation; Run is the ctx-taking surface
	ds, _ := Run(context.Background(), eco, profile, WithSites(eco.SenderSites))
	return ds
}

// CrawlSites crawls a chosen site subset.
//
// Deprecated: use Run with WithSites (or WithSource for a lazy
// population). CrawlSites survives as a thin wrapper for one release.
func CrawlSites(eco *webgen.Ecosystem, profile browser.Profile, sites []*site.Site) *Dataset {
	//lint:allow ctxflow convenience API without cancellation; Run is the ctx-taking surface
	ds, _ := Run(context.Background(), eco, profile, WithSource(site.Slice(sites)))
	return ds
}

// newDataset builds an empty dataset shell: persona, browser label and
// the zone's CNAME view.
func newDataset(eco *webgen.Ecosystem, browserLabel string) *Dataset {
	ds := &Dataset{
		Browser: browserLabel,
		Persona: eco.Persona,
		Mailbox: &mailbox.Mailbox{},
		Blocked: map[string]int{},
		CNAMEs:  map[string]string{},
	}
	for _, host := range eco.Zone.Hosts() {
		if chain, err := eco.Zone.Resolve(host); err == nil && len(chain) > 0 {
			ds.CNAMEs[host] = chain[0]
		}
	}
	return ds
}

// crawlOne executes the flow on one site. rt is the resilient transport
// for this crawl (nil for the stock fault-free run): when set, every
// navigation can fail after retries, and the flow degrades instead of
// pretending the web is reliable.
func crawlOne(b *browser.Browser, s *site.Site, p pii.Persona, mbox *mailbox.Mailbox, rt *faultTransport) SiteCrawl {
	crawl := SiteCrawl{
		Domain:       s.Domain,
		Rank:         s.Rank,
		Obstacle:     s.Obstacle,
		EmailConfirm: s.EmailConfirm,
		BotDetection: s.BotDetection,
	}
	if rt != nil {
		b.Transport = rt
	}
	finish := func(outcome Outcome) SiteCrawl {
		crawl.Outcome = outcome
		crawl.Records = b.Records
		rt.account(&crawl, b)
		return crawl
	}

	switch s.Obstacle {
	case site.ObstacleUnreachable:
		crawl.Outcome = OutcomeUnreachable
		rt.account(&crawl, b)
		return crawl
	case site.ObstacleNoAuth:
		b.VisitPage(s, s.BaseURL(), httpmodel.PhaseHomepage, false)
		return finish(OutcomeNoAuthFlow)
	case site.ObstaclePhoneVerify, site.ObstacleIDDocuments, site.ObstacleRegionBlock:
		b.VisitPage(s, s.BaseURL(), httpmodel.PhaseHomepage, false)
		b.VisitPage(s, s.PageURL("/account/signup"), httpmodel.PhaseSignup, false)
		return finish(OutcomeSignupBlocked)
	}

	// Homepage, then the sign-up page. A homepage that never arrives —
	// retries spent, circuit opened — is the live-web unreachable case
	// (§3.2's 22 sites); a later step breaking instead degrades the
	// record to partial.
	if !b.VisitPage(s, s.BaseURL(), httpmodel.PhaseHomepage, false) {
		return finish(OutcomeUnreachable)
	}
	signupPage := s.PageURL("/account/signup")
	if !b.VisitPage(s, signupPage, httpmodel.PhaseSignup, false) {
		return finish(OutcomePartial)
	}

	// Bot detection: a human operator passes; Brave's shields break
	// the CAPTCHA widget on one site (§7.1).
	if s.BotDetection && s.CaptchaBreaksUnderShields && b.Profile.Shields != nil {
		return finish(OutcomeCaptcha)
	}

	// Submit the sign-up form. GET forms land on the action URL with
	// PII in the query string (the referer-leak source); POST forms
	// redirect to a clean welcome page.
	action := s.SignupActionURL(p)
	resultPage := action
	if !s.SignupGET {
		resultPage = s.PageURL("/account/welcome")
	}
	if !b.SubmitForm(s, action, s.FormFields(p), httpmodel.PhaseSignup, signupPage) {
		return finish(OutcomePartial)
	}
	b.RenderSubresources(s, resultPage, httpmodel.PhaseSignup, false)
	b.FireAuthEvent(s, resultPage, httpmodel.PhaseSignup, false, p, 1)

	// E-mail confirmation when the site requires it. The mail is sent
	// by the sign-up that just succeeded, so it is delivered even when
	// the activation visit then fails.
	if s.EmailConfirm {
		link := s.PageURL("/account/confirm?token=tok-" + s.Domain)
		mbox.DeliverConfirmation(s.Domain, link)
		if !b.VisitPage(s, link, httpmodel.PhaseConfirm, false) {
			return finish(OutcomePartial)
		}
	}

	// Sign in with the created account.
	loginPage := s.PageURL("/account/login")
	if !b.VisitPage(s, loginPage, httpmodel.PhaseSignin, false) {
		return finish(OutcomePartial)
	}
	home := s.PageURL("/account/home")
	if !b.SubmitForm(s, s.PageURL("/account/login/submit"), []site.FormField{
		{Name: "email", Value: p.Email},
		{Name: "password", Value: "correct-horse-battery"},
	}, httpmodel.PhaseSignin, loginPage) {
		return finish(OutcomePartial)
	}
	b.RenderSubresources(s, home, httpmodel.PhaseSignin, false)
	b.FireAuthEvent(s, home, httpmodel.PhaseSignin, false, p, 1)

	// Reload the logged-in page.
	if !b.VisitPage(s, home, httpmodel.PhaseReload, false) {
		return finish(OutcomePartial)
	}
	b.FireAuthEvent(s, home, httpmodel.PhaseReload, false, p, 1)

	// Click through to a product subpage (§5.2's persistence probe):
	// persistent tags fire on the view and again on an interaction.
	product := s.PageURL("/product/8812")
	if !b.VisitPage(s, product, httpmodel.PhaseSubpage, true) {
		return finish(OutcomePartial)
	}
	b.FireAuthEvent(s, product, httpmodel.PhaseSubpage, true, p, 2)

	// Post-signup marketing mail.
	mbox.DeliverMarketing(s.Domain, s.MarketingMails, s.SpamMails)

	return finish(OutcomeSuccess)
}

// WriteJSONFile writes the dataset to a path, gzip-compressing when the
// name ends in ".gz" (full datasets are ~10 MB of JSON). The write goes
// through a temp file in the same directory and an atomic rename, and
// every close/flush error propagates — a crashed or disk-full run can
// never leave a truncated dataset under the final name.
func (d *Dataset) WriteJSONFile(path string) (err error) {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("crawler: writing %s: %w", path, err)
	}
	tmp := f.Name()
	defer func() {
		if err != nil {
			f.Close()
			os.Remove(tmp)
		}
	}()
	var w io.Writer = f
	var gz *gzip.Writer
	if strings.HasSuffix(path, ".gz") {
		gz = gzip.NewWriter(f)
		w = gz
	}
	if err = d.WriteJSON(w); err != nil {
		return fmt.Errorf("crawler: writing %s: %w", path, err)
	}
	if gz != nil {
		// Close flushes the compressor; losing this error is how
		// truncated .gz datasets used to reach disk.
		if err = gz.Close(); err != nil {
			return fmt.Errorf("crawler: writing %s: flushing gzip: %w", path, err)
		}
	}
	if err = f.Sync(); err != nil {
		return fmt.Errorf("crawler: writing %s: %w", path, err)
	}
	if err = f.Close(); err != nil {
		return fmt.Errorf("crawler: writing %s: %w", path, err)
	}
	if err = os.Rename(tmp, path); err != nil {
		return fmt.Errorf("crawler: writing %s: %w", path, err)
	}
	return nil
}

// ReadJSONFile loads a dataset from a path, transparently decompressing
// ".gz" files.
func ReadJSONFile(path string) (ds *Dataset, err error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("crawler: %w", err)
	}
	defer func() {
		if cerr := f.Close(); cerr != nil && err == nil {
			err = fmt.Errorf("crawler: closing %s: %w", path, cerr)
		}
	}()
	var r io.Reader = f
	if strings.HasSuffix(path, ".gz") {
		gz, err := gzip.NewReader(f)
		if err != nil {
			return nil, fmt.Errorf("crawler: reading %s: %w", path, err)
		}
		defer gz.Close()
		r = gz
	}
	ds, err = decodeDataset(r)
	if err != nil {
		return nil, fmt.Errorf("crawler: reading %s: %w", path, err)
	}
	return ds, nil
}
