// Package crawler orchestrates the §3.2 data acquisition flow against
// the synthetic ecosystem, exactly as the paper's operator did by hand:
// visit the homepage, fill and submit the sign-up form, follow the
// e-mailed confirmation link when required, sign in, reload the
// logged-in page, and click through to a product subpage — recording
// every HTTP request, response and cookie along the way.
package crawler

import (
	"compress/gzip"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"

	"piileak/internal/browser"
	"piileak/internal/dnssim"
	"piileak/internal/httpmodel"
	"piileak/internal/mailbox"
	"piileak/internal/pii"
	"piileak/internal/site"
	"piileak/internal/webgen"
)

// Outcome summarizes one site's crawl result for the funnel accounting.
type Outcome string

// Crawl outcomes (§3.2's funnel).
const (
	OutcomeSuccess       Outcome = "success"
	OutcomeUnreachable   Outcome = "unreachable"
	OutcomeNoAuthFlow    Outcome = "no_auth_flow"
	OutcomeSignupBlocked Outcome = "signup_blocked"  // phone / ID / region policies
	OutcomeCaptcha       Outcome = "captcha_blocked" // Brave shields broke the CAPTCHA
)

// SiteCrawl is the captured traffic of one site visit.
type SiteCrawl struct {
	Domain   string             `json:"domain"`
	Rank     int                `json:"rank"`
	Outcome  Outcome            `json:"outcome"`
	Obstacle site.Obstacle      `json:"obstacle,omitempty"`
	Records  []httpmodel.Record `json:"records,omitempty"`
	// EmailConfirm and BotDetection echo the site's flow properties.
	EmailConfirm bool `json:"email_confirm,omitempty"`
	BotDetection bool `json:"bot_detection,omitempty"`
}

// Dataset is a full collection run. It is self-contained: the persona
// and the DNS CNAME view travel with the records, so detection can run
// from the JSON alone.
type Dataset struct {
	Browser string           `json:"browser"`
	Persona pii.Persona      `json:"persona"`
	Crawls  []SiteCrawl      `json:"crawls"`
	Mailbox *mailbox.Mailbox `json:"mailbox,omitempty"`
	Blocked map[string]int   `json:"blocked,omitempty"` // per-receiver shield blocks
	// CNAMEs is the DNS view (host -> target) captured during the
	// crawl, for CNAME-cloaking classification.
	CNAMEs map[string]string `json:"cnames,omitempty"`
}

// Zone rebuilds the DNS zone from the dataset's CNAME view.
func (d *Dataset) Zone() *dnssim.Zone {
	z := dnssim.NewZone()
	for host, target := range d.CNAMEs {
		z.AddCNAME(host, target)
	}
	return z
}

// Successes returns the crawls that completed the auth flow.
func (d *Dataset) Successes() []*SiteCrawl {
	var out []*SiteCrawl
	for i := range d.Crawls {
		if d.Crawls[i].Outcome == OutcomeSuccess {
			out = append(out, &d.Crawls[i])
		}
	}
	return out
}

// FunnelCounts tallies outcomes.
func (d *Dataset) FunnelCounts() map[Outcome]int {
	out := map[Outcome]int{}
	for _, c := range d.Crawls {
		out[c.Outcome]++
	}
	return out
}

// TotalRecords counts captured requests.
func (d *Dataset) TotalRecords() int {
	n := 0
	for _, c := range d.Crawls {
		n += len(c.Records)
	}
	return n
}

// WriteJSON serializes the dataset.
func (d *Dataset) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(d)
}

// ReadJSON deserializes a dataset.
func ReadJSON(r io.Reader) (*Dataset, error) {
	var d Dataset
	if err := json.NewDecoder(r).Decode(&d); err != nil {
		return nil, fmt.Errorf("crawler: decoding dataset: %w", err)
	}
	return &d, nil
}

// Crawl runs the full §3.2 flow over every candidate site with the given
// browser profile and returns the dataset.
func Crawl(eco *webgen.Ecosystem, profile browser.Profile) *Dataset {
	return CrawlSites(eco, profile, eco.Sites)
}

// CrawlSenders re-crawls only the leaking first parties — the §7.1
// browser evaluation's workload.
func CrawlSenders(eco *webgen.Ecosystem, profile browser.Profile) *Dataset {
	return CrawlSites(eco, profile, eco.SenderSites)
}

// CrawlSites crawls a chosen site subset.
func CrawlSites(eco *webgen.Ecosystem, profile browser.Profile, sites []*site.Site) *Dataset {
	ds := &Dataset{
		Browser: profile.Name + " " + profile.Version,
		Persona: eco.Persona,
		Mailbox: &mailbox.Mailbox{},
		Blocked: map[string]int{},
		CNAMEs:  map[string]string{},
	}
	for _, host := range eco.Zone.Hosts() {
		if chain, err := eco.Zone.Resolve(host); err == nil && len(chain) > 0 {
			ds.CNAMEs[host] = chain[0]
		}
	}
	b := browser.New(profile, eco.Zone)
	for _, s := range sites {
		crawl := crawlOne(b, s, eco.Persona, ds.Mailbox)
		ds.Crawls = append(ds.Crawls, crawl)
		for recv, n := range b.Blocked {
			ds.Blocked[recv] += n
		}
		b.Reset()
	}
	return ds
}

// crawlOne executes the flow on one site.
func crawlOne(b *browser.Browser, s *site.Site, p pii.Persona, mbox *mailbox.Mailbox) SiteCrawl {
	crawl := SiteCrawl{
		Domain:       s.Domain,
		Rank:         s.Rank,
		Obstacle:     s.Obstacle,
		EmailConfirm: s.EmailConfirm,
		BotDetection: s.BotDetection,
	}

	switch s.Obstacle {
	case site.ObstacleUnreachable:
		crawl.Outcome = OutcomeUnreachable
		return crawl
	case site.ObstacleNoAuth:
		b.VisitPage(s, s.BaseURL(), httpmodel.PhaseHomepage, false)
		crawl.Outcome = OutcomeNoAuthFlow
		crawl.Records = b.Records
		return crawl
	case site.ObstaclePhoneVerify, site.ObstacleIDDocuments, site.ObstacleRegionBlock:
		b.VisitPage(s, s.BaseURL(), httpmodel.PhaseHomepage, false)
		b.VisitPage(s, s.PageURL("/account/signup"), httpmodel.PhaseSignup, false)
		crawl.Outcome = OutcomeSignupBlocked
		crawl.Records = b.Records
		return crawl
	}

	// Homepage, then the sign-up page.
	b.VisitPage(s, s.BaseURL(), httpmodel.PhaseHomepage, false)
	signupPage := s.PageURL("/account/signup")
	b.VisitPage(s, signupPage, httpmodel.PhaseSignup, false)

	// Bot detection: a human operator passes; Brave's shields break
	// the CAPTCHA widget on one site (§7.1).
	if s.BotDetection && s.CaptchaBreaksUnderShields && b.Profile.Shields != nil {
		crawl.Outcome = OutcomeCaptcha
		crawl.Records = b.Records
		return crawl
	}

	// Submit the sign-up form. GET forms land on the action URL with
	// PII in the query string (the referer-leak source); POST forms
	// redirect to a clean welcome page.
	action := s.SignupActionURL(p)
	resultPage := action
	if !s.SignupGET {
		resultPage = s.PageURL("/account/welcome")
	}
	b.SubmitForm(s, action, s.FormFields(p), httpmodel.PhaseSignup, signupPage)
	b.RenderSubresources(s, resultPage, httpmodel.PhaseSignup, false)
	b.FireAuthEvent(s, resultPage, httpmodel.PhaseSignup, false, p, 1)

	// E-mail confirmation when the site requires it.
	if s.EmailConfirm {
		link := s.PageURL("/account/confirm?token=tok-" + s.Domain)
		mbox.DeliverConfirmation(s.Domain, link)
		b.VisitPage(s, link, httpmodel.PhaseConfirm, false)
	}

	// Sign in with the created account.
	loginPage := s.PageURL("/account/login")
	b.VisitPage(s, loginPage, httpmodel.PhaseSignin, false)
	home := s.PageURL("/account/home")
	b.SubmitForm(s, s.PageURL("/account/login/submit"), []site.FormField{
		{Name: "email", Value: p.Email},
		{Name: "password", Value: "correct-horse-battery"},
	}, httpmodel.PhaseSignin, loginPage)
	b.RenderSubresources(s, home, httpmodel.PhaseSignin, false)
	b.FireAuthEvent(s, home, httpmodel.PhaseSignin, false, p, 1)

	// Reload the logged-in page.
	b.VisitPage(s, home, httpmodel.PhaseReload, false)
	b.FireAuthEvent(s, home, httpmodel.PhaseReload, false, p, 1)

	// Click through to a product subpage (§5.2's persistence probe):
	// persistent tags fire on the view and again on an interaction.
	product := s.PageURL("/product/8812")
	b.VisitPage(s, product, httpmodel.PhaseSubpage, true)
	b.FireAuthEvent(s, product, httpmodel.PhaseSubpage, true, p, 2)

	// Post-signup marketing mail.
	mbox.DeliverMarketing(s.Domain, s.MarketingMails, s.SpamMails)

	crawl.Outcome = OutcomeSuccess
	crawl.Records = b.Records
	return crawl
}

// WriteJSONFile writes the dataset to a path, gzip-compressing when the
// name ends in ".gz" (full datasets are ~10 MB of JSON).
func (d *Dataset) WriteJSONFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	var w io.Writer = f
	if strings.HasSuffix(path, ".gz") {
		gz := gzip.NewWriter(f)
		defer gz.Close()
		w = gz
	}
	return d.WriteJSON(w)
}

// ReadJSONFile loads a dataset from a path, transparently decompressing
// ".gz" files.
func ReadJSONFile(path string) (*Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var r io.Reader = f
	if strings.HasSuffix(path, ".gz") {
		gz, err := gzip.NewReader(f)
		if err != nil {
			return nil, fmt.Errorf("crawler: %w", err)
		}
		defer gz.Close()
		r = gz
	}
	return ReadJSON(r)
}
