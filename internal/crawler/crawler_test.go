package crawler

import (
	"bytes"
	"strings"
	"testing"

	"piileak/internal/browser"
	"piileak/internal/httpmodel"
	"piileak/internal/webgen"
)

func smallDataset(t *testing.T) (*webgen.Ecosystem, *Dataset) {
	t.Helper()
	eco := webgen.MustGenerate(webgen.SmallConfig(11))
	return eco, Crawl(eco, browser.Firefox88())
}

func TestFunnelOutcomes(t *testing.T) {
	eco, ds := smallDataset(t)
	counts := ds.FunnelCounts()
	cfg := eco.Config
	if counts[OutcomeUnreachable] != cfg.Unreachable {
		t.Errorf("unreachable = %d, want %d", counts[OutcomeUnreachable], cfg.Unreachable)
	}
	if counts[OutcomeNoAuthFlow] != cfg.NoAuthFlow {
		t.Errorf("no-auth = %d, want %d", counts[OutcomeNoAuthFlow], cfg.NoAuthFlow)
	}
	wantBlocked := cfg.PhoneVerify + cfg.IDDocuments + cfg.RegionBlock
	if counts[OutcomeSignupBlocked] != wantBlocked {
		t.Errorf("signup-blocked = %d, want %d", counts[OutcomeSignupBlocked], wantBlocked)
	}
	if got := len(ds.Successes()); got != len(eco.Crawlable) {
		t.Errorf("successes = %d, want %d", got, len(eco.Crawlable))
	}
}

func TestSuccessfulCrawlHasAllPhases(t *testing.T) {
	_, ds := smallDataset(t)
	succ := ds.Successes()
	if len(succ) == 0 {
		t.Fatal("no successes")
	}
	phases := map[httpmodel.Phase]bool{}
	for _, r := range succ[0].Records {
		phases[r.Phase] = true
	}
	for _, want := range []httpmodel.Phase{
		httpmodel.PhaseHomepage, httpmodel.PhaseSignup, httpmodel.PhaseSignin,
		httpmodel.PhaseReload, httpmodel.PhaseSubpage,
	} {
		if !phases[want] {
			t.Errorf("missing phase %s", want)
		}
	}
}

func TestEmailConfirmSitesVisitConfirmLink(t *testing.T) {
	eco, ds := smallDataset(t)
	confirms := 0
	for _, c := range ds.Successes() {
		if !c.EmailConfirm {
			continue
		}
		confirms++
		found := false
		for _, r := range c.Records {
			if r.Phase == httpmodel.PhaseConfirm {
				found = true
			}
		}
		if !found {
			t.Errorf("%s: no confirm-phase records", c.Domain)
		}
	}
	if confirms != eco.Config.EmailConfirm {
		t.Errorf("email-confirm successes = %d, want %d", confirms, eco.Config.EmailConfirm)
	}
	// Confirmation mails were delivered.
	confMails := 0
	for _, m := range ds.Mailbox.Messages {
		if m.Kind == "confirmation" {
			confMails++
		}
	}
	if confMails != eco.Config.EmailConfirm {
		t.Errorf("confirmation mails = %d, want %d", confMails, eco.Config.EmailConfirm)
	}
}

func TestMailboxVolumes(t *testing.T) {
	eco, ds := smallDataset(t)
	if got := ds.Mailbox.Count("inbox"); got != eco.Config.InboxMails {
		t.Errorf("inbox = %d, want %d", got, eco.Config.InboxMails)
	}
	if got := ds.Mailbox.Count("spam"); got != eco.Config.SpamMails {
		t.Errorf("spam = %d, want %d", got, eco.Config.SpamMails)
	}
}

func TestGETSignupLeavesPIIInReferer(t *testing.T) {
	eco, ds := smallDataset(t)
	getSender := eco.SenderSites[0]
	var crawl *SiteCrawl
	for i := range ds.Crawls {
		if ds.Crawls[i].Domain == getSender.Domain {
			crawl = &ds.Crawls[i]
		}
	}
	if crawl == nil {
		t.Fatal("GET sender not crawled")
	}
	found := false
	for _, r := range crawl.Records {
		ref := r.Request.Referer()
		if strings.Contains(ref, "email=") && r.Request.Host() != getSender.Host() {
			found = true
		}
	}
	if !found {
		t.Error("no third-party request carries the PII referer")
	}
}

func TestBraveCaptchaSiteFails(t *testing.T) {
	eco := webgen.MustGenerate(webgen.SmallConfig(11))
	ds := Crawl(eco, browser.Brave129(eco.BraveShields))
	counts := ds.FunnelCounts()
	if counts[OutcomeCaptcha] != 1 {
		t.Errorf("captcha-blocked = %d, want 1", counts[OutcomeCaptcha])
	}
	// The same crawl under Firefox succeeds everywhere.
	ds2 := Crawl(eco, browser.Firefox88())
	if c := ds2.FunnelCounts()[OutcomeCaptcha]; c != 0 {
		t.Errorf("firefox captcha-blocked = %d, want 0", c)
	}
}

func TestBraveBlocksShieldedReceivers(t *testing.T) {
	eco := webgen.MustGenerate(webgen.SmallConfig(11))
	ds := CrawlSenders(eco, browser.Brave129(eco.BraveShields))
	if len(ds.Blocked) == 0 {
		t.Fatal("Brave blocked nothing")
	}
	for _, c := range ds.Crawls {
		for _, r := range c.Records {
			host := r.Request.Host()
			for domain := range eco.BraveShields {
				if host == domain || strings.HasSuffix(host, "."+domain) {
					t.Fatalf("shielded receiver %s reached: %s", domain, r.Request.URL)
				}
			}
		}
	}
}

func TestCrawlSendersSubset(t *testing.T) {
	eco := webgen.MustGenerate(webgen.SmallConfig(11))
	ds := CrawlSenders(eco, browser.Firefox88())
	if len(ds.Crawls) != len(eco.SenderSites) {
		t.Errorf("crawls = %d, want %d", len(ds.Crawls), len(eco.SenderSites))
	}
}

func TestDatasetJSONRoundTrip(t *testing.T) {
	_, ds := smallDataset(t)
	var buf bytes.Buffer
	if err := ds.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.TotalRecords() != ds.TotalRecords() {
		t.Errorf("records after round trip = %d, want %d", back.TotalRecords(), ds.TotalRecords())
	}
	if len(back.Crawls) != len(ds.Crawls) {
		t.Errorf("crawls = %d, want %d", len(back.Crawls), len(ds.Crawls))
	}
}

func TestReadJSONError(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader("{broken")); err == nil {
		t.Error("malformed dataset accepted")
	}
}

func TestCrawlDeterministic(t *testing.T) {
	eco1 := webgen.MustGenerate(webgen.SmallConfig(3))
	eco2 := webgen.MustGenerate(webgen.SmallConfig(3))
	d1 := Crawl(eco1, browser.Firefox88())
	d2 := Crawl(eco2, browser.Firefox88())
	if d1.TotalRecords() != d2.TotalRecords() {
		t.Errorf("record counts differ: %d vs %d", d1.TotalRecords(), d2.TotalRecords())
	}
}

func TestAutomatedCrawlLosesGatedSites(t *testing.T) {
	eco := webgen.MustGenerate(webgen.SmallConfig(81))
	auto := CrawlAutomated(eco, browser.Firefox88())
	counts := auto.FunnelCounts()

	if counts[OutcomeAutoBotDetected] != eco.Config.BotDetection {
		t.Errorf("bot-detected = %d, want %d", counts[OutcomeAutoBotDetected], eco.Config.BotDetection)
	}
	if counts[OutcomeAutoFormUnmatched] == 0 {
		t.Error("no exotic forms defeated the heuristics")
	}
	if counts[OutcomeAutoNoConfirm] == 0 {
		t.Error("no confirmation-gated sites stalled")
	}
	manual := Crawl(eco, browser.Firefox88())
	if counts[OutcomeSuccess] >= manual.FunnelCounts()[OutcomeSuccess] {
		t.Errorf("automation completed %d flows, manual %d — automation should lose coverage",
			counts[OutcomeSuccess], manual.FunnelCounts()[OutcomeSuccess])
	}
	// The funnel obstacles are identical for both.
	if counts[OutcomeUnreachable] != eco.Config.Unreachable {
		t.Errorf("unreachable = %d", counts[OutcomeUnreachable])
	}
}

func TestAutomatedCrawlStillSeesSignupLeaks(t *testing.T) {
	eco := webgen.MustGenerate(webgen.SmallConfig(81))
	auto := CrawlAutomated(eco, browser.Firefox88())
	// A confirmation-gated crawl still contains signup-phase records.
	for i := range auto.Crawls {
		c := &auto.Crawls[i]
		if c.Outcome != OutcomeAutoNoConfirm {
			continue
		}
		sawSignup := false
		for _, r := range c.Records {
			if r.Phase == httpmodel.PhaseSignup {
				sawSignup = true
			}
			if r.Phase == httpmodel.PhaseSubpage {
				t.Fatalf("%s: confirmation-gated crawl reached a subpage", c.Domain)
			}
		}
		if !sawSignup {
			t.Fatalf("%s: no signup records despite form submission", c.Domain)
		}
		return
	}
	t.Skip("no confirmation-gated site in this sample")
}

func TestCrawlParallelMatchesSerial(t *testing.T) {
	eco := webgen.MustGenerate(webgen.SmallConfig(17))
	serial := Crawl(eco, browser.Firefox88())
	parallel := CrawlParallel(eco, browser.Firefox88(), 4)

	if len(serial.Crawls) != len(parallel.Crawls) {
		t.Fatalf("crawl counts differ: %d vs %d", len(serial.Crawls), len(parallel.Crawls))
	}
	for i := range serial.Crawls {
		a, b := &serial.Crawls[i], &parallel.Crawls[i]
		if a.Domain != b.Domain || a.Outcome != b.Outcome || len(a.Records) != len(b.Records) {
			t.Fatalf("site %d differs: %s/%s %s/%s %d/%d",
				i, a.Domain, b.Domain, a.Outcome, b.Outcome, len(a.Records), len(b.Records))
		}
		for j := range a.Records {
			if a.Records[j].Request.URL != b.Records[j].Request.URL {
				t.Fatalf("site %s record %d URL differs", a.Domain, j)
			}
		}
	}
	if serial.Mailbox.Count("inbox") != parallel.Mailbox.Count("inbox") {
		t.Error("mailbox volumes differ")
	}
	if len(serial.Blocked) != len(parallel.Blocked) {
		t.Error("blocked counters differ")
	}
}

func TestCrawlParallelWorkerBounds(t *testing.T) {
	eco := webgen.MustGenerate(webgen.SmallConfig(17))
	for _, workers := range []int{-1, 0, 1, 1000} {
		ds := CrawlParallel(eco, browser.Firefox88(), workers)
		if len(ds.Crawls) != len(eco.Sites) {
			t.Errorf("workers=%d: crawls = %d", workers, len(ds.Crawls))
		}
	}
}

func BenchmarkCrawlSerial(b *testing.B) {
	eco := webgen.MustGenerate(webgen.SmallConfig(17))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Crawl(eco, browser.Firefox88())
	}
}

func BenchmarkCrawlParallel(b *testing.B) {
	eco := webgen.MustGenerate(webgen.SmallConfig(17))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		CrawlParallel(eco, browser.Firefox88(), 0)
	}
}

func TestDatasetFileGzipRoundTrip(t *testing.T) {
	_, ds := smallDataset(t)
	dir := t.TempDir()
	for _, name := range []string{"ds.json", "ds.json.gz"} {
		path := dir + "/" + name
		if err := ds.WriteJSONFile(path); err != nil {
			t.Fatal(err)
		}
		back, err := ReadJSONFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if back.TotalRecords() != ds.TotalRecords() {
			t.Errorf("%s: records = %d, want %d", name, back.TotalRecords(), ds.TotalRecords())
		}
	}
	if _, err := ReadJSONFile(dir + "/missing.json"); err == nil {
		t.Error("missing file accepted")
	}
}
