package crawler

import (
	"bytes"
	"context"
	"reflect"
	"strings"
	"testing"

	"piileak/internal/browser"
	"piileak/internal/core"
	"piileak/internal/dnssim"
	"piileak/internal/faultsim"
	"piileak/internal/pii"
	"piileak/internal/site"
	"piileak/internal/webgen"
)

// faultyEcosystem builds the small ecosystem with fault injection on.
func faultyEcosystem(t *testing.T, seed uint64, rate float64) *webgen.Ecosystem {
	t.Helper()
	cfg := webgen.SmallConfig(seed)
	cfg.Faults = &faultsim.Config{Rate: rate}
	return webgen.MustGenerate(cfg)
}

func datasetBytes(t *testing.T, ds *Dataset) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := ds.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// analyze runs the detection pipeline over a dataset, the way the study
// does, so equivalence tests can compare Table 1 numbers and not just
// raw traffic.
func analyze(t *testing.T, ds *Dataset) *core.Analysis {
	t.Helper()
	cands, err := pii.BuildCandidates(ds.Persona, pii.CandidateConfig{MaxDepth: 2})
	if err != nil {
		t.Fatal(err)
	}
	det := core.NewDetector(cands, dnssim.NewClassifier(ds.Zone()))
	var leaks []core.Leak
	for _, c := range ds.Crawls {
		leaks = append(leaks, det.DetectSite(c.Domain, c.Records)...)
	}
	return core.Analyze(leaks, len(ds.Crawls))
}

func TestFaultFreeOptsMatchStockCrawl(t *testing.T) {
	// Without faults, the options-based entry points must be
	// byte-identical to the stock serial crawl — the resilient runtime
	// may not perturb the default dataset.
	eco := webgen.MustGenerate(webgen.SmallConfig(11))
	want := datasetBytes(t, Crawl(eco, browser.Firefox88()))

	viaOpts, err := CrawlOpts(context.Background(), eco, browser.Firefox88(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, datasetBytes(t, viaOpts)) {
		t.Error("CrawlOpts{} differs from Crawl")
	}
	if !bytes.Equal(want, datasetBytes(t, CrawlParallel(eco, browser.Firefox88(), 4))) {
		t.Error("CrawlParallel differs from Crawl")
	}
	// Fault-free crawls must not emit resilience accounting fields.
	if bytes.Contains(want, []byte(`"attempts"`)) || bytes.Contains(want, []byte(`"failed_fetches"`)) {
		t.Error("fault-free dataset carries resilience fields")
	}
}

func TestFaultCrawlDeterministicAcrossRuns(t *testing.T) {
	a := Crawl(faultyEcosystem(t, 23, 0.3), browser.Firefox88())
	b := Crawl(faultyEcosystem(t, 23, 0.3), browser.Firefox88())
	if !bytes.Equal(datasetBytes(t, a), datasetBytes(t, b)) {
		t.Error("same seed produced different fault-injected datasets")
	}
}

func TestFaultCrawlSeedChangesFaults(t *testing.T) {
	eco := faultyEcosystem(t, 23, 0.3)
	cfg := webgen.SmallConfig(23)
	cfg.Faults = &faultsim.Config{Seed: 999, Rate: 0.3}
	other := webgen.MustGenerate(cfg)
	a := Crawl(eco, browser.Firefox88())
	b := Crawl(other, browser.Firefox88())
	if bytes.Equal(datasetBytes(t, a), datasetBytes(t, b)) {
		t.Error("different fault seeds produced identical datasets (suspicious)")
	}
}

func TestFaultParallelMatchesSerialAllWorkerCounts(t *testing.T) {
	// The acceptance bar: Workers ∈ {0, 1, 4, 8} under injected faults
	// produce the same dataset — same funnel, same leaks, same Table 1.
	serialEco := faultyEcosystem(t, 37, 0.3)
	serial, err := CrawlOpts(context.Background(), serialEco, browser.Firefox88(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := datasetBytes(t, serial)
	wantFunnel := serial.FunnelCounts()
	wantHeadline := analyze(t, serial).Headline()
	if wantFunnel[OutcomePartial]+wantFunnel[OutcomeUnreachable] == 0 {
		t.Log("note: no site degraded at this seed/rate; equivalence still checked")
	}

	for _, workers := range []int{1, 4, 8} {
		eco := faultyEcosystem(t, 37, 0.3)
		ds, err := CrawlOpts(context.Background(), eco, browser.Firefox88(), Options{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(want, datasetBytes(t, ds)) {
			t.Errorf("workers=%d: dataset differs from serial", workers)
			continue
		}
		if got := ds.FunnelCounts(); !reflect.DeepEqual(got, wantFunnel) {
			t.Errorf("workers=%d: funnel %v, want %v", workers, got, wantFunnel)
		}
		if got := analyze(t, ds).Headline(); got != wantHeadline {
			t.Errorf("workers=%d: headline %+v, want %+v", workers, got, wantHeadline)
		}
	}
}

// hostProfiles classifies every host a site's fault-free crawl touches.
func hostProfiles(inj *faultsim.Injector, clean *SiteCrawl, siteHost string) (flaky, fatal bool) {
	hosts := map[string]bool{siteHost: true}
	for _, r := range clean.Records {
		hosts[r.Request.Host()] = true
	}
	for h := range hosts {
		p := inj.ProfileFor(h)
		if p == nil {
			continue
		}
		if p.Permanent || p.FailAfter > 0 {
			fatal = true
		} else if p.FailFirst > 0 {
			flaky = true
		}
	}
	return flaky, fatal
}

func TestRetriesRecoverTransientlyFailingSites(t *testing.T) {
	// Sites whose faulty hosts are all flaky-then-healthy must end with
	// the same outcome a fault-free crawl gives them: the default retry
	// budget (4 attempts) covers the flaky window (≤ 3 failures), and
	// the breaker threshold (5) never truncates a single fetch's budget.
	// The acceptance bar is ≥ 90% recovery; the design gives 100%.
	cleanEco := webgen.MustGenerate(webgen.SmallConfig(29))
	clean := Crawl(cleanEco, browser.Firefox88())
	cleanBySite := map[string]*SiteCrawl{}
	for i := range clean.Crawls {
		cleanBySite[clean.Crawls[i].Domain] = &clean.Crawls[i]
	}

	eco := faultyEcosystem(t, 29, 0.35)
	ds := Crawl(eco, browser.Firefox88())

	transient, recovered, retried := 0, 0, 0
	for i := range ds.Crawls {
		c := &ds.Crawls[i]
		cc := cleanBySite[c.Domain]
		var s *site.Site
		for _, cand := range eco.Sites {
			if cand.Domain == c.Domain {
				s = cand
			}
		}
		flaky, fatal := hostProfiles(eco.Faults, cc, s.Host())
		if fatal || !flaky {
			continue
		}
		transient++
		if c.Outcome == cc.Outcome && len(c.Records) == len(cc.Records) {
			recovered++
		}
		if c.Retries > 0 {
			retried++
		}
	}
	if transient == 0 {
		t.Fatal("no transiently-failing sites at this seed/rate — test is vacuous")
	}
	if rate := float64(recovered) / float64(transient); rate < 0.9 {
		t.Errorf("recovered %d/%d transiently-failing sites (%.0f%%), want >= 90%%",
			recovered, transient, 100*rate)
	}
	if retried == 0 {
		t.Error("no transiently-failing site recorded a retry")
	}
}

func TestPinnedFaultProfilesShapeOutcomes(t *testing.T) {
	// Pin three crawlable sites' own hosts to the three fault classes
	// and check the funnel places each where the design says.
	probe := webgen.MustGenerate(webgen.SmallConfig(41))
	if len(probe.Crawlable) < 3 {
		t.Fatal("not enough crawlable sites")
	}
	dead := probe.Crawlable[0]
	degrading := probe.Crawlable[1]
	flaky := probe.Crawlable[2]

	cfg := webgen.SmallConfig(41)
	cfg.Faults = &faultsim.Config{Hosts: map[string]faultsim.Profile{
		dead.Host():      {Kind: faultsim.KindTimeout, Permanent: true},
		degrading.Host(): {Kind: faultsim.KindHTTP5xx, FailAfter: 2},
		flaky.Host():     {Kind: faultsim.KindHTTP5xx, FailFirst: 3},
	}}
	eco := webgen.MustGenerate(cfg)
	ds := Crawl(eco, browser.Firefox88())

	byDomain := map[string]*SiteCrawl{}
	for i := range ds.Crawls {
		byDomain[ds.Crawls[i].Domain] = &ds.Crawls[i]
	}

	if c := byDomain[dead.Domain]; c.Outcome != OutcomeUnreachable {
		t.Errorf("permanent host: outcome %s, want unreachable", c.Outcome)
	} else if c.FailedFetches == 0 || c.Attempts == 0 {
		t.Errorf("permanent host: accounting empty: %+v", c)
	}

	if c := byDomain[degrading.Domain]; c.Outcome != OutcomePartial {
		t.Errorf("degrading host: outcome %s, want partial", c.Outcome)
	} else if len(c.Records) == 0 {
		t.Error("degrading host: partial record carries no traffic")
	}

	if c := byDomain[flaky.Domain]; c.Outcome != OutcomeSuccess {
		t.Errorf("flaky host: outcome %s, want success", c.Outcome)
	} else if c.Retries < 3 {
		t.Errorf("flaky host: retries = %d, want >= 3 (the flaky window)", c.Retries)
	}
}

func TestPartialRecordsKeepPrefixTraffic(t *testing.T) {
	// A partial crawl's records must be a prefix-consistent subset of
	// the fault-free crawl: same site, strictly fewer records, and no
	// record the clean crawl lacks.
	cleanEco := webgen.MustGenerate(webgen.SmallConfig(29))
	clean := Crawl(cleanEco, browser.Firefox88())
	cleanBySite := map[string]*SiteCrawl{}
	for i := range clean.Crawls {
		cleanBySite[clean.Crawls[i].Domain] = &clean.Crawls[i]
	}

	// Bias the fault mix toward degrading hosts so some site's own host
	// dies mid-flow and the partial path actually runs.
	cfg := webgen.SmallConfig(29)
	cfg.Faults = &faultsim.Config{Rate: 0.5, DegradeFrac: 0.6, PermanentFrac: 0.05}
	ds := Crawl(webgen.MustGenerate(cfg), browser.Firefox88())
	partials := 0
	for i := range ds.Crawls {
		c := &ds.Crawls[i]
		if c.Outcome != OutcomePartial {
			continue
		}
		partials++
		cc := cleanBySite[c.Domain]
		if len(c.Records) >= len(cc.Records) {
			t.Errorf("%s: partial crawl has %d records, clean has %d", c.Domain, len(c.Records), len(cc.Records))
		}
		cleanURLs := map[string]bool{}
		for _, r := range cc.Records {
			cleanURLs[r.Request.URL] = true
		}
		for _, r := range c.Records {
			if !cleanURLs[r.Request.URL] {
				t.Errorf("%s: partial crawl fetched %s, absent from the clean crawl", c.Domain, r.Request.URL)
			}
		}
	}
	if partials == 0 {
		t.Fatal("no partial outcomes despite a degrading-heavy fault mix")
	}
}

func TestReadJSONRejectsDuplicateDomains(t *testing.T) {
	dup := `{"browser":"x","crawls":[{"domain":"a.com","rank":1,"outcome":"success"},{"domain":"a.com","rank":2,"outcome":"success"}]}`
	if _, err := ReadJSON(strings.NewReader(dup)); err == nil {
		t.Fatal("duplicate site domain accepted")
	} else if !strings.Contains(err.Error(), "duplicate site domain") {
		t.Errorf("error %q does not name the duplicate", err)
	}
}
