package crawler

import (
	"piileak/internal/browser"
	"piileak/internal/formmatch"
	"piileak/internal/httpmodel"
	"piileak/internal/pii"
	"piileak/internal/site"
	"piileak/internal/webgen"
)

// This file implements the OpenWPM-style automated crawler the paper
// deliberately did NOT use (§3.2): it fills forms with keyword
// heuristics, cannot pass bot detection, and cannot follow e-mailed
// confirmation links. Experiment X4 compares its coverage against the
// manual flow, operationalizing the paper's claim that "these sites can
// not be crawled automatically".

// Automation-specific outcomes.
const (
	// OutcomeAutoBotDetected: the site's bot check caught the crawler.
	OutcomeAutoBotDetected Outcome = "automation_bot_detected"
	// OutcomeAutoFormUnmatched: the form-filling heuristics could not
	// match every required input.
	OutcomeAutoFormUnmatched Outcome = "automation_form_unmatched"
	// OutcomeAutoNoConfirm: sign-up succeeded but the account was
	// never activated (no mailbox integration), so the signed-in part
	// of the flow is missing.
	OutcomeAutoNoConfirm Outcome = "automation_confirm_unreachable"
)

// CrawlAutomated runs the §3.2 flow the way an automated crawler would,
// over every candidate site.
func CrawlAutomated(eco *webgen.Ecosystem, profile browser.Profile) *Dataset {
	ds := newDataset(eco, profile.Name+" "+profile.Version+" (automated)")
	matcher := formmatch.NewMatcher()
	b := browser.New(profile, eco.Zone)
	for _, s := range eco.Sites {
		ds.Crawls = append(ds.Crawls, autoCrawlOne(b, s, eco.Persona, matcher))
		for recv, n := range b.Blocked {
			ds.Blocked[recv] += n
		}
		b.Reset()
	}
	return ds
}

func autoCrawlOne(b *browser.Browser, s *site.Site, p pii.Persona, m *formmatch.Matcher) SiteCrawl {
	crawl := SiteCrawl{
		Domain:       s.Domain,
		Rank:         s.Rank,
		Obstacle:     s.Obstacle,
		EmailConfirm: s.EmailConfirm,
		BotDetection: s.BotDetection,
	}

	// The funnel obstacles hit automation exactly as they hit humans.
	switch s.Obstacle {
	case site.ObstacleUnreachable:
		crawl.Outcome = OutcomeUnreachable
		return crawl
	case site.ObstacleNoAuth:
		b.VisitPage(s, s.BaseURL(), httpmodel.PhaseHomepage, false)
		crawl.Outcome = OutcomeNoAuthFlow
		crawl.Records = b.Records
		return crawl
	case site.ObstaclePhoneVerify, site.ObstacleIDDocuments, site.ObstacleRegionBlock:
		b.VisitPage(s, s.BaseURL(), httpmodel.PhaseHomepage, false)
		b.VisitPage(s, s.PageURL("/account/signup"), httpmodel.PhaseSignup, false)
		crawl.Outcome = OutcomeSignupBlocked
		crawl.Records = b.Records
		return crawl
	}

	b.VisitPage(s, s.BaseURL(), httpmodel.PhaseHomepage, false)
	signupPage := s.PageURL("/account/signup")
	b.VisitPage(s, signupPage, httpmodel.PhaseSignup, false)

	// Bot detection catches headless automation (§3.2: 43 sites).
	if s.BotDetection {
		crawl.Outcome = OutcomeAutoBotDetected
		crawl.Records = b.Records
		return crawl
	}
	// Keyword heuristics must match every required input.
	if !m.CanComplete(s.RequiredInputs()) {
		crawl.Outcome = OutcomeAutoFormUnmatched
		crawl.Records = b.Records
		return crawl
	}

	// Submit the form; sign-up-time tag events still fire, so partial
	// leakage is visible even where the flow cannot continue.
	action := s.SignupActionURL(p)
	resultPage := action
	if !s.SignupGET {
		resultPage = s.PageURL("/account/welcome")
	}
	b.SubmitForm(s, action, s.FormFields(p), httpmodel.PhaseSignup, signupPage)
	b.RenderSubresources(s, resultPage, httpmodel.PhaseSignup, false)
	b.FireAuthEvent(s, resultPage, httpmodel.PhaseSignup, false, p, 1)

	// No mailbox integration: confirmation-gated accounts stay
	// inactive and the signed-in flow never happens (§3.2: 68 sites).
	if s.EmailConfirm {
		crawl.Outcome = OutcomeAutoNoConfirm
		crawl.Records = b.Records
		return crawl
	}

	// Sign in, reload, subpage — as in the manual flow.
	loginPage := s.PageURL("/account/login")
	b.VisitPage(s, loginPage, httpmodel.PhaseSignin, false)
	home := s.PageURL("/account/home")
	b.SubmitForm(s, s.PageURL("/account/login/submit"), []site.FormField{
		{Name: "email", Value: p.Email},
		{Name: "password", Value: "correct-horse-battery"},
	}, httpmodel.PhaseSignin, loginPage)
	b.RenderSubresources(s, home, httpmodel.PhaseSignin, false)
	b.FireAuthEvent(s, home, httpmodel.PhaseSignin, false, p, 1)

	b.VisitPage(s, home, httpmodel.PhaseReload, false)
	b.FireAuthEvent(s, home, httpmodel.PhaseReload, false, p, 1)

	product := s.PageURL("/product/8812")
	b.VisitPage(s, product, httpmodel.PhaseSubpage, true)
	b.FireAuthEvent(s, product, httpmodel.PhaseSubpage, true, p, 2)

	crawl.Outcome = OutcomeSuccess
	crawl.Records = b.Records
	return crawl
}
