package crawler

import (
	"bytes"
	"context"
	"testing"

	"piileak/internal/browser"
	"piileak/internal/site"
	"piileak/internal/webgen"
)

func runDatasetJSON(t *testing.T, ds *Dataset) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := ds.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestDeprecatedWrappersMatchRun pins the API collapse: Crawl,
// CrawlSenders and CrawlSites are thin wrappers over the source-based
// Run, so each must produce byte-identical dataset JSON to the Run call
// it delegates to — including CrawlSites(nil), which crawls zero sites,
// never the whole universe.
func TestDeprecatedWrappersMatchRun(t *testing.T) {
	eco := webgen.MustGenerate(webgen.SmallConfig(11))
	profile := browser.Firefox88()
	ctx := context.Background()

	run := func(options ...Option) []byte {
		ds, err := Run(ctx, eco, profile, options...)
		if err != nil {
			t.Fatal(err)
		}
		return runDatasetJSON(t, ds)
	}

	if got, want := runDatasetJSON(t, Crawl(eco, profile)), run(); !bytes.Equal(got, want) {
		t.Error("Crawl diverges from Run with no options")
	}
	if got, want := runDatasetJSON(t, CrawlSenders(eco, profile)), run(WithSites(eco.SenderSites)); !bytes.Equal(got, want) {
		t.Error("CrawlSenders diverges from Run(WithSites(SenderSites))")
	}
	subset := eco.Sites[:5]
	if got, want := runDatasetJSON(t, CrawlSites(eco, profile, subset)), run(WithSource(site.Slice(subset))); !bytes.Equal(got, want) {
		t.Error("CrawlSites diverges from Run(WithSource)")
	}
	if ds := CrawlSites(eco, profile, nil); len(ds.Crawls) != 0 {
		t.Errorf("CrawlSites(nil) crawled %d sites, want 0", len(ds.Crawls))
	}
}

// TestRunSourceAndSitesContradict: supplying both site populations is a
// validation error, not a silent preference.
func TestRunSourceAndSitesContradict(t *testing.T) {
	eco := webgen.MustGenerate(webgen.SmallConfig(11))
	_, err := Run(context.Background(), eco, browser.Firefox88(),
		WithSites(eco.Sites), WithSource(site.Slice(eco.Sites)))
	if err == nil {
		t.Fatal("Run accepted Source and Sites together")
	}
}

// TestRunLazySourceMatchesEagerSites: the same population supplied
// lazily (the ecosystem's universe) and eagerly (the materialized core
// slice) crawls to byte-identical datasets, serial and parallel.
func TestRunLazySourceMatchesEagerSites(t *testing.T) {
	eco := webgen.MustGenerate(webgen.SmallConfig(11))
	profile := browser.Firefox88()
	ctx := context.Background()

	eager, err := Run(ctx, eco, profile, WithSites(eco.Sites))
	if err != nil {
		t.Fatal(err)
	}
	want := runDatasetJSON(t, eager)
	lazy, err := Run(ctx, eco, profile, WithSource(eco.Universe()))
	if err != nil {
		t.Fatal(err)
	}
	if got := runDatasetJSON(t, lazy); !bytes.Equal(got, want) {
		t.Error("lazy serial crawl diverges from the eager slice")
	}
	parallel, err := Run(ctx, eco, profile, WithSource(eco.Universe()), WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	if got := runDatasetJSON(t, parallel); !bytes.Equal(got, want) {
		t.Error("lazy parallel crawl diverges from the eager slice")
	}
}
