package crawler

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"piileak/internal/browser"
	"piileak/internal/faultsim"
	"piileak/internal/webgen"
)

// TestWatchdogCutsOffSlowSite: a site whose own host is persistently
// slow (each fetch succeeds but burns virtual time) must be cut off at
// the -site-timeout budget and recorded as OutcomeTimeout with its
// partial captures kept.
func TestWatchdogCutsOffSlowSite(t *testing.T) {
	probe := webgen.MustGenerate(webgen.SmallConfig(41))
	slow := probe.Crawlable[0]

	cfg := webgen.SmallConfig(41)
	cfg.Faults = &faultsim.Config{Hosts: map[string]faultsim.Profile{
		// 5s per fetch, always, within the 10s attempt budget: every
		// fetch succeeds, the site just bleeds the clock.
		slow.Host(): {Kind: faultsim.KindSlow, Permanent: true, Delay: 5 * time.Second},
	}}
	eco := webgen.MustGenerate(cfg)

	// Without a watchdog the slow site still completes.
	unbounded, err := CrawlOpts(context.Background(), eco, browser.Firefox88(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	var unboundedOutcome Outcome
	for i := range unbounded.Crawls {
		if unbounded.Crawls[i].Domain == slow.Domain {
			unboundedOutcome = unbounded.Crawls[i].Outcome
		}
	}
	if unboundedOutcome != OutcomeSuccess {
		t.Fatalf("slow site without watchdog: outcome %s, want success (test premise)", unboundedOutcome)
	}

	ds, err := CrawlOpts(context.Background(), eco, browser.Firefox88(), Options{SiteTimeout: 12 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	var got *SiteCrawl
	for i := range ds.Crawls {
		c := &ds.Crawls[i]
		if c.Domain == slow.Domain {
			got = c
		} else if c.Outcome == OutcomeTimeout {
			t.Errorf("site %s timed out but only %s is slow", c.Domain, slow.Domain)
		}
	}
	if got.Outcome != OutcomeTimeout {
		t.Fatalf("slow site outcome = %s, want timeout", got.Outcome)
	}
	if len(got.Records) == 0 {
		t.Error("timed-out site lost its partial captures")
	}
	if got.FailedFetches == 0 {
		t.Error("watchdog cutoff did not feed the failed-fetches accounting")
	}
}

// TestWatchdogDeterministicAcrossWorkerCounts: the watchdog runs on the
// per-site virtual clock, so parallel and serial runs trip it at the
// same point and stay byte-identical.
func TestWatchdogDeterministicAcrossWorkerCounts(t *testing.T) {
	opts := func(workers int) Options {
		return Options{Workers: workers, SiteTimeout: 20 * time.Second}
	}
	serial, err := CrawlOpts(context.Background(), faultyEcosystem(t, 37, 0.3), browser.Firefox88(), opts(0))
	if err != nil {
		t.Fatal(err)
	}
	want := datasetBytes(t, serial)
	for _, workers := range []int{1, 4} {
		ds, err := CrawlOpts(context.Background(), faultyEcosystem(t, 37, 0.3), browser.Firefox88(), opts(workers))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(want, datasetBytes(t, ds)) {
			t.Errorf("workers=%d: watchdog dataset differs from serial", workers)
		}
	}
}

// TestWatchdogFaultFreeStaysByteIdentical: with no injector, a site
// budget must not perturb the stock dataset — the virtual clock never
// advances, so the deadline never trips and no accounting fields leak
// into the JSON.
func TestWatchdogFaultFreeStaysByteIdentical(t *testing.T) {
	eco := webgen.MustGenerate(webgen.SmallConfig(11))
	want := datasetBytes(t, Crawl(eco, browser.Firefox88()))
	ds, err := CrawlOpts(context.Background(), eco, browser.Firefox88(), Options{SiteTimeout: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, datasetBytes(t, ds)) {
		t.Error("fault-free crawl with -site-timeout is not byte-identical to the stock crawl")
	}
}

// TestPanicQuarantinesOnlyAffectedSite: a site whose host panics
// mid-flow is recovered, recorded as crashed with its pre-crash
// captures, and bundled into the quarantine; every other site matches
// the clean crawl.
func TestPanicQuarantinesOnlyAffectedSite(t *testing.T) {
	probe := webgen.MustGenerate(webgen.SmallConfig(41))
	poison := probe.Crawlable[1]

	cfg := webgen.SmallConfig(41)
	cfg.Faults = &faultsim.Config{Hosts: map[string]faultsim.Profile{
		// Serve two fetches, then blow up: the bundle gets a last
		// request and the record keeps pre-crash traffic.
		poison.Host(): {Kind: faultsim.KindPanic, FailAfter: 2},
	}}
	eco := webgen.MustGenerate(cfg)

	clean := Crawl(webgen.MustGenerate(webgen.SmallConfig(41)), browser.Firefox88())
	cleanBySite := map[string]Outcome{}
	for i := range clean.Crawls {
		cleanBySite[clean.Crawls[i].Domain] = clean.Crawls[i].Outcome
	}

	dir := t.TempDir()
	q, err := NewQuarantine(dir)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := CrawlOpts(context.Background(), eco, browser.Firefox88(), Options{Quarantine: q})
	if err != nil {
		t.Fatal(err)
	}

	for i := range ds.Crawls {
		c := &ds.Crawls[i]
		if c.Domain == poison.Domain {
			if c.Outcome != OutcomeCrashed {
				t.Errorf("poison site outcome = %s, want crashed", c.Outcome)
			}
			if len(c.Records) == 0 {
				t.Error("crashed site lost its pre-crash captures")
			}
			continue
		}
		if c.Outcome != cleanBySite[c.Domain] {
			t.Errorf("%s: outcome %s, clean run had %s — the panic bled across sites", c.Domain, c.Outcome, cleanBySite[c.Domain])
		}
	}

	if q.Len() != 1 || q.Sites()[0] != poison.Domain {
		t.Fatalf("quarantine holds %v, want exactly [%s]", q.Sites(), poison.Domain)
	}
	bundles, err := ReadManifest(q.ManifestPath())
	if err != nil {
		t.Fatal(err)
	}
	if len(bundles) != 1 {
		t.Fatalf("manifest holds %d bundles, want 1", len(bundles))
	}
	b := bundles[0]
	if b.Stage != StageCrawl || b.Domain != poison.Domain || b.Outcome != OutcomeCrashed {
		t.Errorf("bundle = %+v, want crawl-stage crash of %s", b, poison.Domain)
	}
	if b.Panic == "" || b.Stack == "" || b.LastRequest == "" {
		t.Errorf("bundle missing diagnostics: panic=%q last=%q stack %d bytes", b.Panic, b.LastRequest, len(b.Stack))
	}
	if b.EcoSeed != 41 {
		t.Errorf("bundle eco seed = %d, want 41", b.EcoSeed)
	}
	if _, err := os.Stat(filepath.Join(dir, poison.Domain+".json")); err != nil {
		t.Errorf("per-site bundle file missing: %v", err)
	}

	// A nil quarantine still contains the panic.
	ds2, err := CrawlOpts(context.Background(), eco, browser.Firefox88(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	crashed := 0
	for _, c := range ds2.Crawls {
		if c.Outcome == OutcomeCrashed {
			crashed++
		}
	}
	if crashed != 1 {
		t.Errorf("nil quarantine: %d crashed sites, want 1", crashed)
	}
}

// TestPanicQuarantineParallelMatchesSerial: crash containment must not
// disturb parallel/serial equivalence.
func TestPanicQuarantineParallelMatchesSerial(t *testing.T) {
	build := func() *webgen.Ecosystem {
		probe := webgen.MustGenerate(webgen.SmallConfig(41))
		cfg := webgen.SmallConfig(41)
		cfg.Faults = &faultsim.Config{Hosts: map[string]faultsim.Profile{
			probe.Crawlable[1].Host(): {Kind: faultsim.KindPanic, FailAfter: 2},
		}}
		return webgen.MustGenerate(cfg)
	}
	serial, err := CrawlOpts(context.Background(), build(), browser.Firefox88(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	par, err := CrawlOpts(context.Background(), build(), browser.Firefox88(), Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(datasetBytes(t, serial), datasetBytes(t, par)) {
		t.Error("datasets with a quarantined site diverge between serial and parallel")
	}
}

// TestCrashedSiteNotRecrawledOnResume: a crashed site is checkpointed
// like any finished site, so resume does not re-run the poison.
func TestCrashedSiteNotRecrawledOnResume(t *testing.T) {
	probe := webgen.MustGenerate(webgen.SmallConfig(41))
	poison := probe.Crawlable[0]
	cfg := webgen.SmallConfig(41)
	cfg.Faults = &faultsim.Config{Hosts: map[string]faultsim.Profile{
		poison.Host(): {Kind: faultsim.KindPanic, Permanent: true},
	}}
	eco := webgen.MustGenerate(cfg)

	path := filepath.Join(t.TempDir(), "ckpt.jsonl")
	full, err := CrawlOpts(context.Background(), eco, browser.Firefox88(), Options{CheckpointPath: path})
	if err != nil {
		t.Fatal(err)
	}
	// Resume over the finished checkpoint with a quarantine installed:
	// nothing re-crawls, so nothing can panic and the quarantine stays
	// empty.
	q, err := NewQuarantine(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	resumed, err := ResumeCrawl(context.Background(), eco, browser.Firefox88(), path, Options{Quarantine: q})
	if err != nil {
		t.Fatal(err)
	}
	if q.Len() != 0 {
		t.Errorf("resume re-ran the crashed site (%d quarantined)", q.Len())
	}
	if !bytes.Equal(datasetBytes(t, full), datasetBytes(t, resumed)) {
		t.Error("resumed dataset differs from the original")
	}
}

// TestCancelMidCrawlLeavesResumableCheckpoint: cancelling a serial
// checkpointed crawl mid-run returns context.Canceled, keeps a valid
// checkpoint of exactly the finished sites, and a resume completes to a
// byte-identical dataset.
func TestCancelMidCrawlLeavesResumableCheckpoint(t *testing.T) {
	eco := faultyEcosystem(t, 53, 0.3)
	full, err := CrawlOpts(context.Background(), eco, browser.Firefox88(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := datasetBytes(t, full)

	path := filepath.Join(t.TempDir(), "ckpt.jsonl")
	ctx, cancel := context.WithCancel(context.Background())
	emitted := 0
	err = CrawlStream(ctx, eco, browser.Firefox88(), Options{CheckpointPath: path}, func(SiteResult) error {
		emitted++
		if emitted == 3 {
			cancel()
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled crawl returned %v, want context.Canceled", err)
	}
	if emitted != 3 {
		t.Fatalf("emitted %d sites after cancellation, want 3", emitted)
	}

	var summary ResumeSummary
	resumed, err := ResumeCrawl(context.Background(), eco, browser.Firefox88(), path, Options{
		OnResume: func(rs ResumeSummary) { summary = rs },
	})
	if err != nil {
		t.Fatal(err)
	}
	if summary.Completed != 3 || summary.TornRecords != 0 {
		t.Errorf("resume summary = %+v, want 3 completed, 0 torn", summary)
	}
	if !bytes.Equal(want, datasetBytes(t, resumed)) {
		t.Error("resumed dataset after cancellation is not byte-identical to the uninterrupted run")
	}
}

// TestCancelParallelCrawlResumesByteIdentical: parallel cancellation
// discards every in-flight site (workers race the cancel), yet resume
// still reproduces the uninterrupted dataset exactly.
func TestCancelParallelCrawlResumesByteIdentical(t *testing.T) {
	eco := faultyEcosystem(t, 53, 0.3)
	full, err := CrawlOpts(context.Background(), eco, browser.Firefox88(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := datasetBytes(t, full)

	path := filepath.Join(t.TempDir(), "ckpt.jsonl")
	ctx, cancel := context.WithCancel(context.Background())
	var emitted atomic.Int32 // emit is called from the worker goroutines
	err = CrawlStream(ctx, eco, browser.Firefox88(), Options{CheckpointPath: path, Workers: 4}, func(SiteResult) error {
		if emitted.Add(1) == 3 {
			cancel()
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled crawl returned %v, want context.Canceled", err)
	}

	resumed, err := ResumeCrawl(context.Background(), eco, browser.Firefox88(), path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, datasetBytes(t, resumed)) {
		t.Error("resumed dataset after parallel cancellation is not byte-identical")
	}
}

// TestCancelledContextStopsBeforeAnySite: a pre-cancelled context never
// crawls anything.
func TestCancelledContextStopsBeforeAnySite(t *testing.T) {
	eco := webgen.MustGenerate(webgen.SmallConfig(11))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := CrawlStream(ctx, eco, browser.Firefox88(), Options{}, func(SiteResult) error {
		t.Fatal("a site was emitted under a cancelled context")
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestResumeReportsTornRecords: garbage appended to a checkpoint (the
// kill-mid-record case) is counted and reported, not silently dropped.
func TestResumeReportsTornRecords(t *testing.T) {
	eco := faultyEcosystem(t, 53, 0.3)
	full, err := CrawlOpts(context.Background(), eco, browser.Firefox88(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "ckpt.jsonl")
	if _, err := CrawlOpts(context.Background(), eco, browser.Firefox88(), Options{
		Sites: eco.Sites[:3], CheckpointPath: path,
	}); err != nil {
		t.Fatal(err)
	}
	// Tear the tail: half a JSON line (the kill) plus a stray line that
	// a corrupted page might leave behind it.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"crawl":{"domain":"torn.e` + "\n" + `garbage tail` + "\n"); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	var summary ResumeSummary
	resumed, err := ResumeCrawl(context.Background(), eco, browser.Firefox88(), path, Options{
		OnResume: func(rs ResumeSummary) { summary = rs },
	})
	if err != nil {
		t.Fatal(err)
	}
	if summary.Completed != 3 {
		t.Errorf("resume summary completed = %d, want 3", summary.Completed)
	}
	if summary.TornRecords != 2 {
		t.Errorf("resume summary torn_records = %d, want 2", summary.TornRecords)
	}
	if !bytes.Equal(datasetBytes(t, full), datasetBytes(t, resumed)) {
		t.Error("resume over a torn checkpoint is not byte-identical to the uninterrupted run")
	}
}
