package crawler

import (
	"context"
	"sync"

	"piileak/internal/browser"
	"piileak/internal/mailbox"
	"piileak/internal/obs"
	"piileak/internal/resilience"
	"piileak/internal/site"
	"piileak/internal/webgen"
)

// This file is the streaming crawl engine: one site-at-a-time emission
// loop that crawlSerial, crawlParallel and the exported CrawlStream are
// all built on. The batch paths collect emissions into a Dataset; the
// streaming study pipeline instead forwards each emission straight into
// detection so captures never pile up.

// SiteResult is one completed site crawl as emitted by CrawlStream: the
// crawl record plus the mail and shield-block side effects that must
// travel with it, and the site's index in the crawl order so downstream
// consumers can reassemble deterministic output regardless of the order
// completions arrive in.
type SiteResult struct {
	Index   int
	Crawl   SiteCrawl
	Mail    []mailbox.Message
	Blocked map[string]int
}

// CrawlStream runs the crawl and hands each completed site to emit
// instead of assembling a Dataset. With Workers <= 1 the crawl is
// serial and emissions arrive in site order; with more workers, emit is
// called from the worker goroutines in completion order and must be
// safe for concurrent use. A blocking emit exerts backpressure: the
// worker holds its finished site until emit returns, so a bounded
// consumer bounds the number of captures in flight. An emit error stops
// the crawl. Checkpointing works exactly as in CrawlOpts: sites already
// in the checkpoint are emitted without re-crawling, in site order
// relative to each other, as the crawl reaches them. Cancelling ctx
// stops the crawl with ctx's error; the site in flight at that moment
// is discarded, never checkpointed or emitted.
//
// The site population comes from Options.Source (or Sites, or the
// ecosystem's universe): sites are materialized one at a time as the
// crawl reaches them, so a lazy source is never held in memory whole.
func CrawlStream(ctx context.Context, eco *webgen.Ecosystem, profile browser.Profile, opts Options, emit func(SiteResult) error) error {
	return streamCrawl(ctx, eco, profile, opts.source(eco), opts.Workers, opts, func(i int, e crawlEntry) error {
		return emit(SiteResult{Index: i, Crawl: e.Crawl, Mail: e.Mail, Blocked: e.Blocked})
	})
}

// DatasetShell returns an empty dataset frame (persona, browser label,
// CNAME view) for assembling streamed site results into.
func DatasetShell(eco *webgen.Ecosystem, profile browser.Profile) *Dataset {
	return newDataset(eco, profile.Name+" "+profile.Version)
}

// Merge appends one streamed site result to the dataset. Callers must
// merge results in site order for the dataset to match a batch crawl
// byte for byte.
func (d *Dataset) Merge(r SiteResult) {
	d.merge(crawlEntry{Crawl: r.Crawl, Mail: r.Mail, Blocked: r.Blocked})
}

// streamCrawl is the engine. workers <= 1 runs the single-browser
// serial loop (emissions in site order); workers > 1 runs the bounded
// pool (emissions in completion order, concurrent emit). Checkpointed
// sites are emitted without crawling as the walk reaches them.
//
// The engine walks the source by index and materializes exactly one
// site per step — the serial loop directly, the parallel path in the
// feeding goroutine — so peak site memory is the sites held by the
// workers plus the one being fed, never the source's length. The
// materialization count lands in the universe-materialized gauge: for
// a shard worker over a lazy universe it reads the shard's size.
//
// Cancellation is crash-only: a done ctx stops the loop before the next
// site, and a site mid-crawl when cancellation lands is dropped on the
// floor — the checkpoint then holds exactly a prefix of the
// uninterrupted run, which is what makes resume byte-identical.
func streamCrawl(ctx context.Context, eco *webgen.Ecosystem, profile browser.Profile, src site.Source, workers int, opts Options, emit func(int, crawlEntry) error) error {
	if ctx == nil {
		ctx = context.Background()
	}
	inj := injectorFor(eco, opts)
	o := opts.Obs

	var ckpt *Checkpoint
	if opts.CheckpointPath != "" {
		var err error
		ckpt, err = OpenCheckpoint(opts.CheckpointPath, eco, profile, opts.Resume, opts.ShardLabel())
		if err != nil {
			return err
		}
		defer ckpt.Close()
		if opts.Resume {
			o.Count(obs.MetricCheckpointTorn, int64(ckpt.TornRecords()))
			if opts.OnResume != nil {
				opts.OnResume(ResumeSummary{Completed: ckpt.Done(), TornRecords: ckpt.TornRecords()})
			}
		}
	}

	var materialized int64
	defer func() { o.GaugeMax(obs.MetricUniverseMaterialized, materialized) }()

	if workers <= 1 {
		b := browser.New(profile, eco.Zone)
		b.Ctx = ctx
		b.Obs = o
		for i := 0; i < src.Len(); i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			materialized++
			s := src.At(i)
			if e, ok := ckpt.lookup(s.Domain); ok {
				noteResumedSite(o, &e)
				if err := emit(i, e); err != nil {
					return err
				}
				continue
			}
			sp := o.StartSpan(obs.StageCrawl, s.Domain, i)
			rt := newFaultTransport(ctx, eco, inj, opts)
			e := crawlEntryFor(b, eco, s, rt, opts.Quarantine)
			if err := ctx.Err(); err != nil {
				// Cancelled mid-site: the entry is abandoned so the
				// checkpoint stays a clean prefix.
				return err
			}
			if ckpt != nil {
				if err := ckpt.Append(e); err != nil {
					return err
				}
				o.Count(obs.MetricCheckpointAppends, 1)
			}
			noteCrawledSite(o, sp, rt, &e)
			if err := emit(i, e); err != nil {
				return err
			}
			b.Reset()
		}
		if ckpt != nil {
			return ckpt.Close()
		}
		return nil
	}

	if workers > src.Len() {
		workers = src.Len()
	}
	if workers < 1 {
		workers = 1
	}

	var (
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
	)
	stop := make(chan struct{})
	fail := func(err error) {
		errOnce.Do(func() {
			firstErr = err
			close(stop)
		})
	}
	next := make(chan feedItem)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			b := browser.New(profile, eco.Zone)
			b.Ctx = ctx
			b.Obs = o
			for it := range next {
				sp := o.StartSpan(obs.StageCrawl, it.site.Domain, it.index)
				rt := newFaultTransport(ctx, eco, inj, opts)
				e := crawlEntryFor(b, eco, it.site, rt, opts.Quarantine)
				if err := ctx.Err(); err != nil {
					// Drop the in-flight entry; the checkpoint keeps
					// only sites finished before cancellation.
					fail(err)
					return
				}
				if ckpt != nil {
					if err := ckpt.Append(e); err != nil {
						fail(err)
						return
					}
					o.Count(obs.MetricCheckpointAppends, 1)
				}
				noteCrawledSite(o, sp, rt, &e)
				if err := emit(it.index, e); err != nil {
					fail(err)
					return
				}
				b.Reset()
			}
		}()
	}
	feedSites(ctx, src, ckpt, o, next, stop, fail, emit, &materialized)
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	if ckpt != nil {
		return ckpt.Close()
	}
	return nil
}

// feedItem is one site handed to the worker pool: the feeder is the
// single point that materializes sites from the source, so workers
// receive the already-derived pointer instead of re-deriving it.
type feedItem struct {
	index int
	site  *site.Site
}

// feedSites walks the source in index order, materializing one site at
// a time: checkpointed sites are emitted directly (in site order
// relative to each other, concurrently with worker emissions), the rest
// stream to the pool. The walk stops when a worker fails or the run is
// cancelled, then closes the feed channel.
func feedSites(ctx context.Context, src site.Source, ckpt *Checkpoint, o *obs.Run, next chan<- feedItem, stop <-chan struct{}, fail func(error), emit func(int, crawlEntry) error, materialized *int64) {
feed:
	for i := 0; i < src.Len(); i++ {
		select {
		case <-stop:
			break feed
		case <-ctx.Done():
			fail(ctx.Err())
			break feed
		default:
		}
		*materialized++
		s := src.At(i)
		if e, ok := ckpt.lookup(s.Domain); ok {
			noteResumedSite(o, &e)
			if err := emit(i, e); err != nil {
				fail(err)
				break feed
			}
			continue
		}
		select {
		case next <- feedItem{index: i, site: s}:
		case <-stop:
			break feed
		case <-ctx.Done():
			fail(ctx.Err())
			break feed
		}
	}
	close(next)
}

// noteCrawledSite closes a site's crawl span and folds its outcome into
// the counters. rt's virtual clock, when the site ran under faults,
// supplies the span's deterministic simulated duration.
func noteCrawledSite(o *obs.Run, sp *obs.Span, rt *faultTransport, e *crawlEntry) {
	if o == nil {
		return
	}
	if rt != nil {
		if vc, ok := rt.exec.Clock.(*resilience.VirtualClock); ok {
			elapsed := vc.Elapsed()
			sp.AddDuration(elapsed)
			o.Observe(obs.HistSiteVirtualMS, elapsed.Milliseconds())
		}
	}
	sp.SetN(len(e.Crawl.Records))
	sp.SetOutcome(string(e.Crawl.Outcome))
	sp.End()
	noteSiteCounters(o, e)
}

// noteResumedSite counts a checkpoint-loaded site: it contributes to
// the run's totals like any other, plus the resumed-sites counter. No
// span — the work happened in a previous process.
func noteResumedSite(o *obs.Run, e *crawlEntry) {
	if o == nil {
		return
	}
	o.Count(obs.MetricCheckpointResumed, 1)
	noteSiteCounters(o, e)
}

// noteSiteCounters folds one finished site into the crawl counters.
func noteSiteCounters(o *obs.Run, e *crawlEntry) {
	o.Count(obs.MetricCrawlSites, 1)
	o.CountKind(obs.MetricCrawlOutcome, string(e.Crawl.Outcome), 1)
	o.Count(obs.MetricCrawlRecords, int64(len(e.Crawl.Records)))
	o.Observe(obs.HistSiteRecords, int64(len(e.Crawl.Records)))
	switch e.Crawl.Outcome {
	case OutcomeTimeout:
		o.Count(obs.MetricWatchdogTimeouts, 1)
	case OutcomeCrashed:
		o.CountKind(obs.MetricQuarantined, StageCrawl, 1)
	}
}
