package crawler

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"piileak/internal/browser"
)

func TestCheckpointResumeMatchesUninterrupted(t *testing.T) {
	// Crawl half the sites with a checkpoint (simulating a killed run),
	// then resume over the full set: the merged dataset must be
	// byte-identical to an uninterrupted crawl — under faults, where
	// per-site determinism actually earns its keep.
	eco := faultyEcosystem(t, 53, 0.3)
	full, err := CrawlOpts(context.Background(), eco, browser.Firefox88(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := datasetBytes(t, full)

	path := filepath.Join(t.TempDir(), "crawl.ckpt")
	half := eco.Sites[:len(eco.Sites)/2]
	if _, err := CrawlOpts(context.Background(), eco, browser.Firefox88(), Options{Sites: half, CheckpointPath: path}); err != nil {
		t.Fatal(err)
	}

	resumed, err := ResumeCrawl(context.Background(), eco, browser.Firefox88(), path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, datasetBytes(t, resumed)) {
		t.Error("resumed dataset differs from uninterrupted crawl")
	}
}

func TestCheckpointResumeToleratesTornTail(t *testing.T) {
	eco := faultyEcosystem(t, 53, 0.3)
	full, err := CrawlOpts(context.Background(), eco, browser.Firefox88(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := datasetBytes(t, full)

	path := filepath.Join(t.TempDir(), "crawl.ckpt")
	if _, err := CrawlOpts(context.Background(), eco, browser.Firefox88(), Options{Sites: eco.Sites[:3], CheckpointPath: path}); err != nil {
		t.Fatal(err)
	}
	// Simulate a kill mid-append: a truncated JSON line at the tail.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"crawl":{"domain":"torn.example","ou`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	resumed, err := ResumeCrawl(context.Background(), eco, browser.Firefox88(), path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, datasetBytes(t, resumed)) {
		t.Error("resume after torn tail differs from uninterrupted crawl")
	}
}

func TestCheckpointRefusesForeignRun(t *testing.T) {
	eco := faultyEcosystem(t, 53, 0.3)
	path := filepath.Join(t.TempDir(), "crawl.ckpt")
	if _, err := CrawlOpts(context.Background(), eco, browser.Firefox88(), Options{Sites: eco.Sites[:2], CheckpointPath: path}); err != nil {
		t.Fatal(err)
	}

	// Different seed: the sites are a different population.
	other := faultyEcosystem(t, 54, 0.3)
	if _, err := ResumeCrawl(context.Background(), other, browser.Firefox88(), path, Options{}); err == nil {
		t.Error("resume accepted a checkpoint from a different seed")
	}
	// Different browser: the traffic is incomparable.
	if _, err := ResumeCrawl(context.Background(), eco, browser.Chrome93(), path, Options{}); err == nil {
		t.Error("resume accepted a checkpoint from a different browser")
	}
	// Same run resumes fine.
	if _, err := ResumeCrawl(context.Background(), eco, browser.Firefox88(), path, Options{}); err != nil {
		t.Errorf("matching resume failed: %v", err)
	}
}

func TestCheckpointRefusesDuplicateEntries(t *testing.T) {
	eco := faultyEcosystem(t, 53, 0.3)
	path := filepath.Join(t.TempDir(), "crawl.ckpt")
	if _, err := CrawlOpts(context.Background(), eco, browser.Firefox88(), Options{Sites: eco.Sites[:2], CheckpointPath: path}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(strings.TrimRight(string(data), "\n"), "\n")
	last := lines[len(lines)-1]
	if err := os.WriteFile(path, append(data, []byte(last+"\n")...), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ResumeCrawl(context.Background(), eco, browser.Firefox88(), path, Options{}); err == nil {
		t.Error("resume accepted a checkpoint with a duplicated site")
	} else if !strings.Contains(err.Error(), "duplicate") {
		t.Errorf("error %q does not name the duplicate", err)
	}
}

func TestCheckpointParallelResumeMatchesSerial(t *testing.T) {
	eco := faultyEcosystem(t, 59, 0.3)
	full, err := CrawlOpts(context.Background(), eco, browser.Firefox88(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := datasetBytes(t, full)

	path := filepath.Join(t.TempDir(), "crawl.ckpt")
	if _, err := CrawlOpts(context.Background(), eco, browser.Firefox88(), Options{
		Sites: eco.Sites[:len(eco.Sites)/3], Workers: 4, CheckpointPath: path,
	}); err != nil {
		t.Fatal(err)
	}
	resumed, err := ResumeCrawl(context.Background(), eco, browser.Firefox88(), path, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, datasetBytes(t, resumed)) {
		t.Error("parallel resume differs from uninterrupted serial crawl")
	}
}

func TestCheckpointFreshRunTruncatesStaleFile(t *testing.T) {
	// Without -resume, an existing checkpoint is overwritten, not
	// appended to: a second fresh run must not see the first's entries.
	eco := faultyEcosystem(t, 53, 0.3)
	path := filepath.Join(t.TempDir(), "crawl.ckpt")
	if _, err := CrawlOpts(context.Background(), eco, browser.Firefox88(), Options{Sites: eco.Sites[:4], CheckpointPath: path}); err != nil {
		t.Fatal(err)
	}
	if _, err := CrawlOpts(context.Background(), eco, browser.Firefox88(), Options{Sites: eco.Sites[:1], CheckpointPath: path}); err != nil {
		t.Fatal(err)
	}
	ckpt, err := OpenCheckpoint(path, eco, browser.Firefox88(), true, "")
	if err != nil {
		t.Fatal(err)
	}
	defer ckpt.Close()
	if ckpt.Done() != 1 {
		t.Errorf("fresh run left %d entries, want 1", ckpt.Done())
	}
}
