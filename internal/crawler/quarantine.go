package crawler

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime/debug"
	"sort"
	"strings"
	"sync"
)

// Quarantine is where panicked sites land: one diagnostics bundle per
// crashed site, written as <domain>.json next to an append-only
// MANIFEST.jsonl, so a poison site can be inspected and re-run
// individually (piicrawl -only <domain>) while the study continues.
//
// The quarantine is diagnostics, not dataset: bundle files are written
// in completion order and never feed back into analysis, so they carry
// wall-context (stacks) without threatening determinism.
type Quarantine struct {
	mu        sync.Mutex
	dir       string
	suffix    string // shard label baked into every path ("" = unsharded)
	bundles   []CrashBundle
	limit     int      // max persisted bundle files (0 = unbounded)
	persisted []string // bundle file paths in write (eviction) order
	evicted   int
}

// Bundle stage markers. StageEvict marks a manifest record noting that
// an older bundle file was evicted to stay under the disk cap — the
// manifest keeps the full crash history even when the bundle bytes are
// gone.
const (
	StageCrawl  = "crawl"
	StageDetect = "detect"
	StageEvict  = "evict"
)

// CrashBundle is one quarantined site's diagnostics: everything needed
// to reproduce the crash in isolation — the stage that panicked, the
// ecosystem and fault seeds, the last request in flight, and the stack.
type CrashBundle struct {
	Stage       string  `json:"stage"` // "crawl" or "detect"
	Domain      string  `json:"domain"`
	Rank        int     `json:"rank"`
	Panic       string  `json:"panic"`
	Stack       string  `json:"stack"`
	EcoSeed     uint64  `json:"eco_seed"`
	FaultSeed   uint64  `json:"fault_seed,omitempty"`
	LastRequest string  `json:"last_request,omitempty"`
	Records     int     `json:"records"`
	Outcome     Outcome `json:"outcome"`
}

// NewQuarantine opens (creating if needed) a quarantine directory.
func NewQuarantine(dir string) (*Quarantine, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("crawler: quarantine %s: %w", dir, err)
	}
	return &Quarantine{dir: dir}, nil
}

// NewQuarantineShard opens a quarantine scoped to one shard of a
// sharded study. Every path it writes — the manifest and the per-site
// bundles — carries a shard-unique suffix, so K concurrent shards can
// share one -quarantine directory without colliding on the manifest or
// interleaving appends within it.
func NewQuarantineShard(dir string, shard, shards int) (*Quarantine, error) {
	q, err := NewQuarantine(dir)
	if err != nil {
		return nil, err
	}
	q.suffix = fmt.Sprintf(".shard-%d-of-%d", shard, shards)
	return q, nil
}

// ManifestPath returns the quarantine's manifest file path
// (shard-unique under NewQuarantineShard).
func (q *Quarantine) ManifestPath() string {
	return filepath.Join(q.dir, "MANIFEST"+q.suffix+".jsonl")
}

// SetLimit caps how many bundle files this quarantine keeps on disk
// (0 = unbounded). When a new bundle would exceed the cap, the oldest
// persisted bundle file is deleted and the eviction is recorded in
// MANIFEST.jsonl (a StageEvict line naming the domain), so a
// pathological fault seed under a long-running server degrades to
// "recent crashes keep full diagnostics, older ones keep their manifest
// history" instead of filling the disk. The in-memory bundle list — and
// with it Len, Sites and the end-of-run summary — still covers every
// crashed site. Nil-receiver safe.
func (q *Quarantine) SetLimit(n int) {
	if q == nil {
		return
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	if n < 0 {
		n = 0
	}
	q.limit = n
}

// Evicted reports how many bundle files the disk cap has deleted.
func (q *Quarantine) Evicted() int {
	if q == nil {
		return 0
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.evicted
}

// evictLocked deletes the oldest persisted bundle files until the disk
// cap holds, appending one StageEvict manifest record per deletion.
// Best-effort like every quarantine write; must be called with the lock
// held.
func (q *Quarantine) evictLocked() {
	for q.limit > 0 && len(q.persisted) > q.limit {
		oldest := q.persisted[0]
		q.persisted = q.persisted[1:]
		if err := os.Remove(oldest); err != nil && !os.IsNotExist(err) {
			continue
		}
		q.evicted++
		domain := strings.TrimSuffix(filepath.Base(oldest), q.suffix+".json")
		q.appendManifestLocked(CrashBundle{Stage: StageEvict, Domain: domain})
	}
}

// appendManifestLocked appends one record to the manifest, best-effort.
func (q *Quarantine) appendManifestLocked(b CrashBundle) {
	line, err := json.Marshal(b)
	if err != nil {
		return
	}
	f, err := os.OpenFile(q.ManifestPath(), os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		return
	}
	defer f.Close() //lint:allow closecheck quarantine persistence is best-effort by design; the write is synced above the close
	f.Write(append(line, '\n'))
	f.Sync()
}

// Add records one crashed site: the bundle file is written whole
// (atomic temp + rename) and a line is appended to the manifest. Safe
// on a nil receiver — the no-quarantine-dir path, where the crash is
// still recovered and the site still marked OutcomeCrashed, just
// without persisted diagnostics. Persistence errors are swallowed: a
// full disk under the quarantine dir must not kill the study the
// quarantine exists to protect.
func (q *Quarantine) Add(b CrashBundle) {
	if q == nil {
		return
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	q.bundles = append(q.bundles, b)

	data, err := json.MarshalIndent(b, "", " ")
	if err != nil {
		return
	}
	path := filepath.Join(q.dir, b.Domain+q.suffix+".json")
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, append(data, '\n'), 0o644); err != nil {
		return
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return
	}
	q.persisted = append(q.persisted, path)

	q.appendManifestLocked(b)
	q.evictLocked()
}

// Len reports how many sites are quarantined.
func (q *Quarantine) Len() int {
	if q == nil {
		return 0
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.bundles)
}

// Sites returns the quarantined domains, sorted — parallel workers add
// bundles in completion order, and the summary must not echo that
// nondeterminism.
func (q *Quarantine) Sites() []string {
	if q == nil {
		return nil
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	out := make([]string, 0, len(q.bundles))
	for _, b := range q.bundles {
		out = append(out, b.Domain)
	}
	sort.Strings(out)
	return out
}

// Bundles returns a copy of the collected bundles, sorted by domain.
func (q *Quarantine) Bundles() []CrashBundle {
	if q == nil {
		return nil
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	out := append([]CrashBundle(nil), q.bundles...)
	sort.Slice(out, func(i, j int) bool { return out[i].Domain < out[j].Domain })
	return out
}

// ReadManifest loads a quarantine manifest's bundles.
func ReadManifest(path string) ([]CrashBundle, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("crawler: quarantine manifest: %w", err)
	}
	defer f.Close() //lint:allow closecheck read-only open; close cannot lose data
	var out []CrashBundle
	dec := json.NewDecoder(f)
	for dec.More() {
		var b CrashBundle
		if err := dec.Decode(&b); err != nil {
			return out, fmt.Errorf("crawler: quarantine manifest %s: %w", path, err)
		}
		out = append(out, b)
	}
	return out, nil
}

// BundleFor assembles the diagnostics for a recovered panic. It must
// be called from inside the recovering deferred function so the stack
// it captures still shows the panicking frames.
func BundleFor(stage string, crawl *SiteCrawl, ecoSeed, faultSeed uint64, panicked any) CrashBundle {
	b := CrashBundle{
		Stage:     stage,
		Domain:    crawl.Domain,
		Rank:      crawl.Rank,
		Panic:     fmt.Sprint(panicked),
		Stack:     string(debug.Stack()),
		EcoSeed:   ecoSeed,
		FaultSeed: faultSeed,
		Records:   len(crawl.Records),
		Outcome:   crawl.Outcome,
	}
	if n := len(crawl.Records); n > 0 {
		b.LastRequest = crawl.Records[n-1].Request.URL
	}
	return b
}
