package crawler

import (
	"runtime"
	"sync"

	"piileak/internal/browser"
	"piileak/internal/mailbox"
	"piileak/internal/site"
	"piileak/internal/webgen"
)

// CrawlParallel is Crawl with a bounded worker pool. Site crawls are
// independent (each gets a fresh browser session), so the dataset is
// byte-identical to the serial crawl: results are merged in site order,
// including the mailbox stream and the per-receiver block counters.
//
// workers <= 0 selects GOMAXPROCS.
func CrawlParallel(eco *webgen.Ecosystem, profile browser.Profile, workers int) *Dataset {
	return crawlParallel(eco, profile, eco.Sites, workers)
}

func crawlParallel(eco *webgen.Ecosystem, profile browser.Profile, sites []*site.Site, workers int) *Dataset {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(sites) {
		workers = len(sites)
	}
	if workers < 1 {
		workers = 1
	}

	type result struct {
		crawl   SiteCrawl
		mbox    mailbox.Mailbox
		blocked map[string]int
	}
	results := make([]result, len(sites))

	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			b := browser.New(profile, eco.Zone)
			for i := range next {
				var mbox mailbox.Mailbox
				results[i] = result{
					crawl:   crawlOne(b, sites[i], eco.Persona, &mbox),
					mbox:    mbox,
					blocked: b.Blocked,
				}
				b.Reset()
			}
		}()
	}
	for i := range sites {
		next <- i
	}
	close(next)
	wg.Wait()

	ds := &Dataset{
		Browser: profile.Name + " " + profile.Version,
		Persona: eco.Persona,
		Mailbox: &mailbox.Mailbox{},
		Blocked: map[string]int{},
		CNAMEs:  map[string]string{},
	}
	for _, host := range eco.Zone.Hosts() {
		if chain, err := eco.Zone.Resolve(host); err == nil && len(chain) > 0 {
			ds.CNAMEs[host] = chain[0]
		}
	}
	for i := range results {
		ds.Crawls = append(ds.Crawls, results[i].crawl)
		ds.Mailbox.Messages = append(ds.Mailbox.Messages, results[i].mbox.Messages...)
		for recv, n := range results[i].blocked {
			ds.Blocked[recv] += n
		}
	}
	return ds
}
