package crawler

import (
	"runtime"
	"sync"

	"piileak/internal/browser"
	"piileak/internal/site"
	"piileak/internal/webgen"
)

// CrawlParallel is Crawl with a bounded worker pool. Site crawls are
// independent (each gets a fresh browser session and, under fault
// injection, its own transport with per-host breakers), so the dataset
// is byte-identical to the serial crawl: results are merged in site
// order, including the mailbox stream and the per-receiver block
// counters.
//
// workers <= 0 selects GOMAXPROCS.
func CrawlParallel(eco *webgen.Ecosystem, profile browser.Profile, workers int) *Dataset {
	ds, _ := crawlParallel(eco, profile, eco.Sites, workers, Options{})
	return ds
}

func crawlParallel(eco *webgen.Ecosystem, profile browser.Profile, sites []*site.Site, workers int, opts Options) (*Dataset, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(sites) {
		workers = len(sites)
	}
	if workers < 1 {
		workers = 1
	}

	inj := injectorFor(eco, opts)

	var ckpt *Checkpoint
	if opts.CheckpointPath != "" {
		var err error
		ckpt, err = OpenCheckpoint(opts.CheckpointPath, eco, profile, opts.Resume)
		if err != nil {
			return nil, err
		}
		defer ckpt.Close()
	}

	results := make([]crawlEntry, len(sites))
	done := make([]bool, len(sites))
	for i, s := range sites {
		if e, ok := ckpt.lookup(s.Domain); ok {
			results[i] = e
			done[i] = true
		}
	}

	var (
		wg      sync.WaitGroup
		errOnce sync.Once
		firstEr error
	)
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			b := browser.New(profile, eco.Zone)
			for i := range next {
				e := crawlEntryFor(b, eco, sites[i], newFaultTransport(eco, inj, opts.Policy))
				if ckpt != nil {
					if err := ckpt.Append(e); err != nil {
						errOnce.Do(func() { firstEr = err })
					}
				}
				results[i] = e
				b.Reset()
			}
		}()
	}
	for i := range sites {
		if !done[i] {
			next <- i
		}
	}
	close(next)
	wg.Wait()
	if firstEr != nil {
		return nil, firstEr
	}

	ds := newDataset(eco, profile.Name+" "+profile.Version)
	for i := range results {
		ds.merge(results[i])
	}
	if ckpt != nil {
		if err := ckpt.Close(); err != nil {
			return nil, err
		}
	}
	return ds, nil
}
