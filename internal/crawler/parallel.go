package crawler

import (
	"context"
	"runtime"

	"piileak/internal/browser"
	"piileak/internal/site"
	"piileak/internal/webgen"
)

// CrawlParallel is Crawl with a bounded worker pool. Site crawls are
// independent (each gets a fresh browser session and, under fault
// injection, its own transport with per-host breakers), so the dataset
// is byte-identical to the serial crawl: results are merged in site
// order, including the mailbox stream and the per-receiver block
// counters.
//
// workers <= 0 selects GOMAXPROCS.
func CrawlParallel(eco *webgen.Ecosystem, profile browser.Profile, workers int) *Dataset {
	//lint:allow ctxflow convenience API without cancellation; CrawlStream is the ctx-taking surface
	ds, _ := crawlParallel(context.Background(), eco, profile, eco.Universe(), workers, Options{})
	return ds
}

// crawlParallel runs the streaming engine with a worker pool and
// collects emissions into site-index slots, then merges them in site
// order — which is what keeps the dataset byte-identical to serial.
// Each index is emitted exactly once, so the concurrent slot writes
// never race.
func crawlParallel(ctx context.Context, eco *webgen.Ecosystem, profile browser.Profile, src site.Source, workers int, opts Options) (*Dataset, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	results := make([]crawlEntry, src.Len())
	err := streamCrawl(ctx, eco, profile, src, workers, opts, func(i int, e crawlEntry) error {
		results[i] = e
		return nil
	})
	if err != nil {
		return nil, err
	}
	ds := newDataset(eco, profile.Name+" "+profile.Version)
	for i := range results {
		ds.merge(results[i])
	}
	return ds, nil
}
