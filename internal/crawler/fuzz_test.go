package crawler

import (
	"bytes"
	"compress/gzip"
	"os"
	"path/filepath"
	"testing"
)

// FuzzReadJSON hammers the dataset decoders with malformed input. Both
// the plain and the gzip path must fail cleanly — no panic, no non-nil
// dataset alongside an error — whatever the bytes look like. The seed
// corpus covers the two regressions that motivated the hardening:
// invalid JSON and a gzip stream truncated mid-flush.
func FuzzReadJSON(f *testing.F) {
	valid := []byte(`{"browser":"firefox 88","crawls":[{"domain":"a.example","rank":1,"outcome":"success"}]}`)
	var gz bytes.Buffer
	w := gzip.NewWriter(&gz)
	w.Write(valid)
	w.Close()

	f.Add(valid)
	f.Add(valid[:len(valid)/2]) // kill mid-record: JSON truncated between syncs
	f.Add([]byte("{broken"))
	f.Add([]byte(`{"crawls":[{"domain":"a.com"},{"domain":"a.com"}]}`))
	f.Add(gz.Bytes())
	f.Add(gz.Bytes()[:gz.Len()/2]) // truncated gzip
	f.Add(gz.Bytes()[:12])         // gzip header only
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		ds, err := ReadJSON(bytes.NewReader(data))
		if (ds == nil) == (err == nil) {
			t.Fatalf("ReadJSON returned ds=%v err=%v", ds, err)
		}

		dir := t.TempDir()
		for _, name := range []string{"ds.json", "ds.json.gz"} {
			path := filepath.Join(dir, name)
			if err := os.WriteFile(path, data, 0o644); err != nil {
				t.Fatal(err)
			}
			ds, err := ReadJSONFile(path)
			if (ds == nil) == (err == nil) {
				t.Fatalf("ReadJSONFile(%s) returned ds=%v err=%v", name, ds, err)
			}
		}
	})
}
