package crawler

import (
	"context"
	"time"

	"piileak/internal/browser"
	"piileak/internal/faultsim"
	"piileak/internal/obs"
	"piileak/internal/resilience"
	"piileak/internal/site"
	"piileak/internal/webgen"
)

// Option configures one Run call. Options compose left to right over a
// zero Options value; contradictions (Source and Sites both set, Resume
// without a checkpoint) surface as Validate errors, exactly as on the
// Options struct itself.
type Option func(*Options)

// WithSource supplies the site population lazily; sites materialize one
// at a time as the crawl reaches them.
func WithSource(src site.Source) Option {
	return func(o *Options) { o.Source = src }
}

// WithSites restricts the crawl to a materialized site slice.
func WithSites(sites []*site.Site) Option {
	return func(o *Options) { o.Sites = sites }
}

// WithWorkers crawls with a bounded pool of n parallel workers; n <= 0
// keeps the serial loop.
func WithWorkers(n int) Option {
	return func(o *Options) { o.Workers = n }
}

// WithFaults overrides the ecosystem's fault injector.
func WithFaults(inj *faultsim.Injector) Option {
	return func(o *Options) { o.Faults = inj }
}

// WithRetryPolicy tunes the resilient transport's retry/breaker
// behaviour.
func WithRetryPolicy(p resilience.Policy) Option {
	return func(o *Options) { o.Policy = p }
}

// WithSiteTimeout sets the per-site watchdog budget.
func WithSiteTimeout(d time.Duration) Option {
	return func(o *Options) { o.SiteTimeout = d }
}

// WithQuarantine collects crash bundles for panicked sites.
func WithQuarantine(q *Quarantine) Option {
	return func(o *Options) { o.Quarantine = q }
}

// WithCheckpoint persists per-site progress to path; resume loads the
// file's completed sites instead of re-crawling them.
func WithCheckpoint(path string, resume bool) Option {
	return func(o *Options) {
		o.CheckpointPath = path
		o.Resume = resume
	}
}

// WithObserver attaches the crawl's telemetry side channel.
func WithObserver(o *obs.Run) Option {
	return func(opts *Options) { opts.Obs = o }
}

// Run executes the §3.2 flow over a site population and returns the
// dataset. With no options it crawls the ecosystem's universe serially
// — at the default universe size, exactly the candidate shopping sites.
// It is the single crawl entry point the historical Crawl, CrawlSenders
// and CrawlSites wrappers now delegate to, mirroring CrawlOpts but with
// composable options instead of a bare struct.
func Run(ctx context.Context, eco *webgen.Ecosystem, profile browser.Profile, options ...Option) (*Dataset, error) {
	var opts Options
	for _, apply := range options {
		apply(&opts)
	}
	return CrawlOpts(ctx, eco, profile, opts)
}
