package crawler

import (
	"os"
	"path/filepath"
	"testing"
)

// TestQuarantineDiskCapEvictsOldest pins the -quarantine-max contract:
// the oldest persisted bundle files are deleted once the cap is
// exceeded, each eviction lands in the manifest as a StageEvict record,
// and the in-memory view (Len, Sites, the end-of-run summary's inputs)
// still covers every crashed site.
func TestQuarantineDiskCapEvictsOldest(t *testing.T) {
	dir := t.TempDir()
	q, err := NewQuarantine(dir)
	if err != nil {
		t.Fatal(err)
	}
	q.SetLimit(2)
	domains := []string{"a.example", "b.example", "c.example", "d.example"}
	for i, d := range domains {
		q.Add(CrashBundle{Stage: StageCrawl, Domain: d, Rank: i, Panic: "boom"})
	}

	if got := q.Evicted(); got != 2 {
		t.Fatalf("Evicted() = %d, want 2", got)
	}
	// Newest two bundle files survive; the oldest two are gone.
	for _, d := range domains[:2] {
		if _, err := os.Stat(filepath.Join(dir, d+".json")); !os.IsNotExist(err) {
			t.Errorf("%s.json should have been evicted (err=%v)", d, err)
		}
	}
	for _, d := range domains[2:] {
		if _, err := os.Stat(filepath.Join(dir, d+".json")); err != nil {
			t.Errorf("%s.json should survive the cap: %v", d, err)
		}
	}
	// In-memory accounting is complete regardless of what is on disk.
	if q.Len() != len(domains) {
		t.Errorf("Len() = %d, want %d", q.Len(), len(domains))
	}
	if sites := q.Sites(); len(sites) != len(domains) {
		t.Errorf("Sites() = %v, want all %d crashed domains", sites, len(domains))
	}

	// The manifest keeps the full history: four crash records plus one
	// eviction record per deleted bundle, in append order.
	records, err := ReadManifest(q.ManifestPath())
	if err != nil {
		t.Fatal(err)
	}
	var crashes, evictions []string
	for _, r := range records {
		switch r.Stage {
		case StageEvict:
			evictions = append(evictions, r.Domain)
		default:
			crashes = append(crashes, r.Domain)
		}
	}
	if len(crashes) != 4 {
		t.Errorf("manifest crash records = %v, want all 4 domains", crashes)
	}
	if len(evictions) != 2 || evictions[0] != "a.example" || evictions[1] != "b.example" {
		t.Errorf("manifest evictions = %v, want oldest-first [a.example b.example]", evictions)
	}
}

// TestQuarantineShardCapNamesDomains verifies eviction under a sharded
// quarantine strips the shard suffix when recording the domain.
func TestQuarantineShardCapNamesDomains(t *testing.T) {
	dir := t.TempDir()
	q, err := NewQuarantineShard(dir, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	q.SetLimit(1)
	q.Add(CrashBundle{Stage: StageDetect, Domain: "x.example"})
	q.Add(CrashBundle{Stage: StageDetect, Domain: "y.example"})
	records, err := ReadManifest(q.ManifestPath())
	if err != nil {
		t.Fatal(err)
	}
	var evicted []string
	for _, r := range records {
		if r.Stage == StageEvict {
			evicted = append(evicted, r.Domain)
		}
	}
	if len(evicted) != 1 || evicted[0] != "x.example" {
		t.Errorf("sharded eviction recorded %v, want [x.example]", evicted)
	}
}

// TestQuarantineUnlimitedKeepsEverything pins the default: limit 0
// never deletes.
func TestQuarantineUnlimitedKeepsEverything(t *testing.T) {
	dir := t.TempDir()
	q, err := NewQuarantine(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range []string{"a.example", "b.example", "c.example"} {
		q.Add(CrashBundle{Stage: StageCrawl, Domain: d})
	}
	if q.Evicted() != 0 {
		t.Fatalf("unbounded quarantine evicted %d bundles", q.Evicted())
	}
	entries, err := filepath.Glob(filepath.Join(dir, "*.example.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 3 {
		t.Fatalf("found %d bundle files, want 3", len(entries))
	}
}
