package crawler

import (
	"context"
	"errors"
	"fmt"
	"time"

	"piileak/internal/browser"
	"piileak/internal/dnssim"
	"piileak/internal/faultsim"
	"piileak/internal/mailbox"
	"piileak/internal/obs"
	"piileak/internal/resilience"
	"piileak/internal/site"
	"piileak/internal/webgen"
)

// This file is the resilient crawl runtime: the glue between faultsim's
// injected failures and the §3.2 flow. Every site crawl gets its own
// transport — per-host attempt counters, circuit breakers, a virtual
// clock and a watchdog deadline — so serial, parallel and resumed runs
// of the same seed produce byte-identical datasets.

// Options configures a crawl beyond the stock fault-free defaults.
type Options struct {
	// Source supplies the site population lazily (site i materialized
	// on demand); nil falls back to Sites, then to the ecosystem's full
	// universe. Setting both Source and Sites is a validation error.
	Source site.Source
	// Sites restricts the crawl to a materialized slice; nil means the
	// ecosystem's universe (which, at the default universe size, is
	// exactly the candidate sites).
	Sites []*site.Site
	// Workers > 0 crawls with that many parallel workers (<= 0 inside
	// CrawlOpts means serial; CrawlParallel keeps its own convention
	// that <= 0 selects GOMAXPROCS).
	Workers int
	// Faults overrides the ecosystem's injector; nil falls back to
	// eco.Faults (which is nil for fault-free configs).
	Faults *faultsim.Injector
	// Policy tunes retry/backoff/breaker behaviour; zero fields take
	// resilience.DefaultPolicy values.
	Policy resilience.Policy
	// SiteTimeout is the per-site watchdog budget: a site whose crawl
	// exceeds it (on the transport's clock, so virtual-clock runs stay
	// deterministic) is cut off and recorded as OutcomeTimeout with its
	// partial captures kept. <= 0 disables the watchdog.
	SiteTimeout time.Duration
	// Quarantine, when set, receives a diagnostics bundle for every
	// site whose crawl (or detection, in the pipeline) panicked. A nil
	// quarantine still recovers panics and marks the site
	// OutcomeCrashed; the bundle is simply not persisted.
	Quarantine *Quarantine
	// CheckpointPath, when set, persists per-site progress so an
	// interrupted run can continue; Resume loads the file's completed
	// sites instead of re-crawling them.
	CheckpointPath string
	Resume         bool
	// OnResume, when set together with Resume, is called once with the
	// loaded checkpoint's summary before crawling begins.
	OnResume func(ResumeSummary)
	// Obs, when set, receives the crawl's telemetry: per-site spans,
	// outcome/record counters, checkpoint and quarantine activity, fault
	// injections and the resilience machinery's accounting. A nil
	// observer is free; telemetry never feeds back into the crawl.
	Obs *obs.Run
	// Shard/Shards scope this crawl to one failure domain of a sharded
	// study: the run covers shard index Shard of Shards total. Shards
	// == 0 is the unsharded default. The pair stamps the checkpoint
	// header, so a shard's checkpoint can never be resumed by a
	// different shard — or by an unsharded run — without an explicit
	// error.
	Shard, Shards int
}

// Validate rejects contradictory option combinations instead of
// silently preferring one side. It is the single source of truth the
// pipeline's embedded options validate through.
func (o Options) Validate() error {
	if o.Source != nil && o.Sites != nil {
		return errors.New("crawler: Source and Sites are both set — pick one site supply")
	}
	if o.Resume && o.CheckpointPath == "" {
		return errors.New("crawler: Resume requires CheckpointPath")
	}
	if o.OnResume != nil && !o.Resume {
		return errors.New("crawler: OnResume is set but Resume is not — the callback would never fire")
	}
	if o.SiteTimeout < 0 {
		return fmt.Errorf("crawler: negative SiteTimeout %v", o.SiteTimeout)
	}
	if o.Shards < 0 {
		return fmt.Errorf("crawler: negative Shards %d", o.Shards)
	}
	if o.Shards == 0 && o.Shard != 0 {
		return fmt.Errorf("crawler: Shard %d set without Shards", o.Shard)
	}
	if o.Shards > 0 && (o.Shard < 0 || o.Shard >= o.Shards) {
		return fmt.Errorf("crawler: Shard %d out of range [0, %d)", o.Shard, o.Shards)
	}
	return nil
}

// ShardLabel renders the options' shard scope as the "i/K" label the
// checkpoint header records; "" for unsharded runs.
func (o Options) ShardLabel() string {
	if o.Shards <= 0 {
		return ""
	}
	return fmt.Sprintf("%d/%d", o.Shard, o.Shards)
}

// ResumeSummary describes what a resumed run recovered from its
// checkpoint: the completed sites it will not re-crawl, and the
// torn (crash-truncated or corrupt) trailing records it dropped.
type ResumeSummary struct {
	Completed   int `json:"completed"`
	TornRecords int `json:"torn_records"`
}

// CrawlOpts runs a crawl under explicit options. ctx cancels the run
// between sites and interrupts in-flight retry backoffs; the entry being
// crawled when cancellation lands is discarded (never checkpointed or
// emitted), so a resumed run stays byte-identical to an uninterrupted
// one.
func CrawlOpts(ctx context.Context, eco *webgen.Ecosystem, profile browser.Profile, opts Options) (*Dataset, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	src := opts.source(eco)
	if opts.Workers > 0 {
		return crawlParallel(ctx, eco, profile, src, opts.Workers, opts)
	}
	return crawlSerial(ctx, eco, profile, src, opts)
}

// source resolves the options' effective site supply: the lazy Source,
// then the materialized Sites slice, then the ecosystem's universe. At
// the default universe size the universe is exactly the candidate
// sites, so the fallback is byte-identical to the historical nil-Sites
// behaviour.
func (o Options) source(eco *webgen.Ecosystem) site.Source {
	if o.Source != nil {
		return o.Source
	}
	if o.Sites != nil {
		return site.Slice(o.Sites)
	}
	return eco.Universe()
}

// ResumeCrawl continues an interrupted checkpointed crawl: completed
// sites come from the checkpoint, the remainder are crawled, and the
// merged dataset is identical to an uninterrupted run's.
func ResumeCrawl(ctx context.Context, eco *webgen.Ecosystem, profile browser.Profile, path string, opts Options) (*Dataset, error) {
	opts.CheckpointPath = path
	opts.Resume = true
	return CrawlOpts(ctx, eco, profile, opts)
}

// injectorFor resolves the effective injector for a crawl.
func injectorFor(eco *webgen.Ecosystem, opts Options) *faultsim.Injector {
	if opts.Faults != nil {
		return opts.Faults
	}
	return eco.Faults
}

// watchdogError is the non-transient failure a tripped site watchdog
// injects into every further fetch: the executor does not retry it, so
// the flow degrades at the next gate and the site finishes immediately.
type watchdogError struct {
	host   string
	budget time.Duration
}

func (e watchdogError) Error() string {
	return fmt.Sprintf("crawler: %s: site exceeded %v watchdog budget", e.host, e.budget)
}

// faultTransport is one site crawl's network path: injected faults from
// the injector, DNS flakiness through a hooked resolver, retry +
// backoff + per-host circuit breakers from the resilience executor, and
// the per-site watchdog deadline. All state is scoped to the one crawl,
// which is what keeps parallel and serial runs identical. A nil
// *faultTransport is the fault-free, watchdog-free path.
type faultTransport struct {
	ctx      context.Context
	inj      *faultsim.Injector
	exec     *resilience.Executor
	resolver *dnssim.Resolver
	hits     map[string]int // per-host non-DNS fetch attempts
	total    int            // every attempt, for SiteCrawl.Attempts
	obs      *obs.Run       // telemetry side channel (nil = unobserved)

	// deadline is the watchdog cutoff on the executor's clock; zero
	// means no watchdog. timedOut latches once the deadline passes.
	deadline time.Time
	budget   time.Duration
	timedOut bool
}

// newFaultTransport builds a transport for one site crawl; nil injector
// with no watchdog yields nil (no transport, no overhead, byte-identical
// fault-free records).
func newFaultTransport(ctx context.Context, eco *webgen.Ecosystem, inj *faultsim.Injector, opts Options) *faultTransport {
	if inj == nil && opts.SiteTimeout <= 0 {
		return nil
	}
	seed := eco.Config.Seed
	if inj != nil {
		seed = inj.Seed()
	}
	t := &faultTransport{
		ctx:  ctx,
		inj:  inj,
		exec: resilience.NewExecutor(opts.Policy, nil, seed),
		hits: map[string]int{},
		obs:  opts.Obs,
	}
	t.exec.Obs = opts.Obs
	if inj != nil {
		hook := inj.DNSHook()
		if o := opts.Obs; o != nil {
			inner := hook
			hook = func(host string, attempt int) error {
				err := inner(host, attempt)
				if err != nil {
					o.CountKind(obs.MetricFaultInjected, string(faultsim.KindDNS), 1)
				}
				return err
			}
		}
		t.resolver = dnssim.NewResolver(eco.Zone, hook)
	}
	if opts.SiteTimeout > 0 {
		t.budget = opts.SiteTimeout
		t.deadline = t.exec.Clock.Now().Add(opts.SiteTimeout)
	}
	return t
}

// watchdogErr reports whether the site's budget is spent, latching the
// timeout flag the outcome override reads after the flow finishes.
func (t *faultTransport) watchdogErr(host string) error {
	if t.deadline.IsZero() || t.exec.Clock.Now().Before(t.deadline) {
		return nil
	}
	t.timedOut = true
	return watchdogError{host: host, budget: t.budget}
}

// Fetch attempts delivery to host under the retry/breaker budget and
// the site watchdog.
func (t *faultTransport) Fetch(host string) error {
	if err := t.watchdogErr(host); err != nil {
		return err
	}
	if t.inj == nil {
		// Watchdog-only transport: nothing can fail, so skip the
		// retry/breaker machinery entirely — fault-free runs with a
		// site budget must stay byte-identical to runs without one.
		return nil
	}
	return t.exec.DoContext(t.ctx, host, func() error {
		// The previous attempt's fault delay or backoff may have spent
		// the site's budget; a watchdog error is not transient, so the
		// executor stops retrying immediately.
		if err := t.watchdogErr(host); err != nil {
			return err
		}
		t.total++
		// DNS leg: flaky resolution fails before any connection.
		if _, err := t.resolver.Lookup(host); err != nil {
			return err
		}
		t.hits[host]++
		f := t.inj.Check(host, t.hits[host])
		if f == nil {
			return nil
		}
		t.obs.CountKind(obs.MetricFaultInjected, string(f.Kind), 1)
		budget := t.exec.Policy.AttemptTimeout
		switch f.Kind {
		case faultsim.KindSlow:
			if f.Delay <= budget {
				// Slow but within the attempt budget: the fetch
				// succeeds, it just costs time.
				t.exec.Clock.Sleep(f.Delay)
				return nil
			}
			t.exec.Clock.Sleep(budget)
			return fmt.Errorf("crawler: %s: response exceeded %v attempt budget: %w", host, budget, f)
		case faultsim.KindTimeout:
			t.exec.Clock.Sleep(budget)
			return f
		case faultsim.KindPanic:
			// The injected crash: the worker's recover quarantines
			// this site and the study continues.
			panic(fmt.Sprintf("crawler: injected panic fetching %s: %v", host, f))
		default:
			return f
		}
	})
}

// account stamps the runtime's counters onto a finished site record.
// Safe on a nil receiver (the fault-free path), where it must leave the
// record untouched so default datasets stay byte-identical. A
// watchdog-only transport (nil injector) stamps failed fetches alone:
// attempts/retries would be non-zero on every site and break fault-free
// byte-identity, while failed fetches stay zero unless the watchdog
// actually tripped.
func (t *faultTransport) account(c *SiteCrawl, b *browser.Browser) {
	if t == nil {
		return
	}
	if t.inj != nil {
		c.Attempts = t.total
		c.Retries = t.exec.Retries
		t.obs.Count(obs.MetricFetchAttempts, int64(t.total))
		t.obs.Count(obs.MetricFetchRetries, int64(t.exec.Retries))
	}
	c.FailedFetches = b.FailedFetches
}

// crawlEntry is one site's complete progress unit: the crawl record
// plus the mail and shield-block side effects that must travel with it
// through checkpoints and parallel merges.
type crawlEntry struct {
	Crawl   SiteCrawl         `json:"crawl"`
	Mail    []mailbox.Message `json:"mail,omitempty"`
	Blocked map[string]int    `json:"blocked,omitempty"`
}

// merge appends an entry to the dataset in site order.
func (d *Dataset) merge(e crawlEntry) {
	d.Crawls = append(d.Crawls, e.Crawl)
	d.Mailbox.Messages = append(d.Mailbox.Messages, e.Mail...)
	for recv, n := range e.Blocked {
		d.Blocked[recv] += n
	}
}

// crawlEntryFor runs one site through the flow and packages the result.
// A panic anywhere in the flow is recovered here: the site is recorded
// as OutcomeCrashed with whatever captures the browser holds, a
// diagnostics bundle goes to the quarantine, and the crawl continues
// with the next site.
func crawlEntryFor(b *browser.Browser, eco *webgen.Ecosystem, s *site.Site, rt *faultTransport, q *Quarantine) (e crawlEntry) {
	var mbox mailbox.Mailbox
	defer func() {
		if r := recover(); r != nil {
			e = crashedEntry(b, eco, s, rt, &mbox, q, StageCrawl, r)
		}
	}()
	crawl := crawlOne(b, s, eco.Persona, &mbox, rt)
	if rt != nil && rt.timedOut {
		// The watchdog cut the flow off mid-step; whatever outcome the
		// degraded flow reached (partial, unreachable) is really a
		// budget exhaustion, recorded as such with partial captures.
		crawl.Outcome = OutcomeTimeout
	}
	return crawlEntry{Crawl: crawl, Mail: mbox.Messages, Blocked: b.Blocked}
}

// crashedEntry packages a panicked site: the quarantined record keeps
// the partial captures and side effects gathered before the crash, so
// the bundle is enough to re-run and debug the site in isolation.
func crashedEntry(b *browser.Browser, eco *webgen.Ecosystem, s *site.Site, rt *faultTransport, mbox *mailbox.Mailbox, q *Quarantine, stage string, panicked any) crawlEntry {
	crawl := SiteCrawl{
		Domain:       s.Domain,
		Rank:         s.Rank,
		Outcome:      OutcomeCrashed,
		Obstacle:     s.Obstacle,
		EmailConfirm: s.EmailConfirm,
		BotDetection: s.BotDetection,
		Records:      b.Records,
	}
	rt.account(&crawl, b)
	var faultSeed uint64
	if rt != nil && rt.inj != nil {
		faultSeed = rt.inj.Seed()
	}
	q.Add(BundleFor(stage, &crawl, eco.Config.Seed, faultSeed, panicked))
	return crawlEntry{Crawl: crawl, Mail: mbox.Messages, Blocked: b.Blocked}
}

// crawlSerial is the single-browser loop behind Run/Crawl/CrawlSites
// and the checkpointing/resilient paths, built on the streaming engine:
// serial emissions arrive in site order, so they merge directly.
func crawlSerial(ctx context.Context, eco *webgen.Ecosystem, profile browser.Profile, src site.Source, opts Options) (*Dataset, error) {
	ds := newDataset(eco, profile.Name+" "+profile.Version)
	err := streamCrawl(ctx, eco, profile, src, 1, opts, func(_ int, e crawlEntry) error {
		ds.merge(e)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return ds, nil
}
