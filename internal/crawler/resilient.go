package crawler

import (
	"fmt"

	"piileak/internal/browser"
	"piileak/internal/dnssim"
	"piileak/internal/faultsim"
	"piileak/internal/mailbox"
	"piileak/internal/resilience"
	"piileak/internal/site"
	"piileak/internal/webgen"
)

// This file is the resilient crawl runtime: the glue between faultsim's
// injected failures and the §3.2 flow. Every site crawl gets its own
// transport — per-host attempt counters, circuit breakers and a virtual
// clock — so serial, parallel and resumed runs of the same seed produce
// byte-identical datasets.

// Options configures a crawl beyond the stock fault-free defaults.
type Options struct {
	// Sites restricts the crawl; nil means every candidate site.
	Sites []*site.Site
	// Workers > 0 crawls with that many parallel workers (<= 0 inside
	// CrawlOpts means serial; CrawlParallel keeps its own convention
	// that <= 0 selects GOMAXPROCS).
	Workers int
	// Faults overrides the ecosystem's injector; nil falls back to
	// eco.Faults (which is nil for fault-free configs).
	Faults *faultsim.Injector
	// Policy tunes retry/backoff/breaker behaviour; zero fields take
	// resilience.DefaultPolicy values.
	Policy resilience.Policy
	// CheckpointPath, when set, persists per-site progress so an
	// interrupted run can continue; Resume loads the file's completed
	// sites instead of re-crawling them.
	CheckpointPath string
	Resume         bool
}

// CrawlOpts runs a crawl under explicit options.
func CrawlOpts(eco *webgen.Ecosystem, profile browser.Profile, opts Options) (*Dataset, error) {
	sites := opts.Sites
	if sites == nil {
		sites = eco.Sites
	}
	if opts.Workers > 0 {
		return crawlParallel(eco, profile, sites, opts.Workers, opts)
	}
	return crawlSerial(eco, profile, sites, opts)
}

// ResumeCrawl continues an interrupted checkpointed crawl: completed
// sites come from the checkpoint, the remainder are crawled, and the
// merged dataset is identical to an uninterrupted run's.
func ResumeCrawl(eco *webgen.Ecosystem, profile browser.Profile, path string, opts Options) (*Dataset, error) {
	opts.CheckpointPath = path
	opts.Resume = true
	return CrawlOpts(eco, profile, opts)
}

// injectorFor resolves the effective injector for a crawl.
func injectorFor(eco *webgen.Ecosystem, opts Options) *faultsim.Injector {
	if opts.Faults != nil {
		return opts.Faults
	}
	return eco.Faults
}

// faultTransport is one site crawl's network path: injected faults from
// the injector, DNS flakiness through a hooked resolver, and retry +
// backoff + per-host circuit breakers from the resilience executor. All
// state is scoped to the one crawl, which is what keeps parallel and
// serial runs identical. A nil *faultTransport is the fault-free path.
type faultTransport struct {
	inj      *faultsim.Injector
	exec     *resilience.Executor
	resolver *dnssim.Resolver
	hits     map[string]int // per-host non-DNS fetch attempts
	total    int            // every attempt, for SiteCrawl.Attempts
}

// newFaultTransport builds a transport for one site crawl; nil injector
// yields nil (no transport, no overhead).
func newFaultTransport(eco *webgen.Ecosystem, inj *faultsim.Injector, policy resilience.Policy) *faultTransport {
	if inj == nil {
		return nil
	}
	return &faultTransport{
		inj:      inj,
		exec:     resilience.NewExecutor(policy, nil, inj.Seed()),
		resolver: dnssim.NewResolver(eco.Zone, inj.DNSHook()),
		hits:     map[string]int{},
	}
}

// Fetch attempts delivery to host under the retry/breaker budget.
func (t *faultTransport) Fetch(host string) error {
	return t.exec.Do(host, func() error {
		t.total++
		// DNS leg: flaky resolution fails before any connection.
		if _, err := t.resolver.Lookup(host); err != nil {
			return err
		}
		t.hits[host]++
		f := t.inj.Check(host, t.hits[host])
		if f == nil {
			return nil
		}
		budget := t.exec.Policy.AttemptTimeout
		switch f.Kind {
		case faultsim.KindSlow:
			if f.Delay <= budget {
				// Slow but within the attempt budget: the fetch
				// succeeds, it just costs time.
				t.exec.Clock.Sleep(f.Delay)
				return nil
			}
			t.exec.Clock.Sleep(budget)
			return fmt.Errorf("crawler: %s: response exceeded %v attempt budget: %w", host, budget, f)
		case faultsim.KindTimeout:
			t.exec.Clock.Sleep(budget)
			return f
		default:
			return f
		}
	})
}

// account stamps the runtime's counters onto a finished site record.
// Safe on a nil receiver (the fault-free path), where it must leave the
// record untouched so default datasets stay byte-identical.
func (t *faultTransport) account(c *SiteCrawl, b *browser.Browser) {
	if t == nil {
		return
	}
	c.Attempts = t.total
	c.Retries = t.exec.Retries
	c.FailedFetches = b.FailedFetches
}

// crawlEntry is one site's complete progress unit: the crawl record
// plus the mail and shield-block side effects that must travel with it
// through checkpoints and parallel merges.
type crawlEntry struct {
	Crawl   SiteCrawl         `json:"crawl"`
	Mail    []mailbox.Message `json:"mail,omitempty"`
	Blocked map[string]int    `json:"blocked,omitempty"`
}

// crawlEntryFor runs one site through the flow and packages the result.
func crawlEntryFor(b *browser.Browser, eco *webgen.Ecosystem, s *site.Site, rt *faultTransport) crawlEntry {
	var mbox mailbox.Mailbox
	crawl := crawlOne(b, s, eco.Persona, &mbox, rt)
	return crawlEntry{Crawl: crawl, Mail: mbox.Messages, Blocked: b.Blocked}
}

// merge appends an entry to the dataset in site order.
func (d *Dataset) merge(e crawlEntry) {
	d.Crawls = append(d.Crawls, e.Crawl)
	d.Mailbox.Messages = append(d.Mailbox.Messages, e.Mail...)
	for recv, n := range e.Blocked {
		d.Blocked[recv] += n
	}
}

// crawlSerial is the single-browser loop behind Crawl/CrawlSites and
// the checkpointing/resilient paths, built on the streaming engine:
// serial emissions arrive in site order, so they merge directly.
func crawlSerial(eco *webgen.Ecosystem, profile browser.Profile, sites []*site.Site, opts Options) (*Dataset, error) {
	ds := newDataset(eco, profile.Name+" "+profile.Version)
	err := streamCrawl(eco, profile, sites, 1, opts, func(_ int, e crawlEntry) error {
		ds.merge(e)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return ds, nil
}
