package piileak

// PaperRef holds the published values every experiment compares against.
// Source: Dao & Fukuda, CoNEXT 2021, sections 3-7.
type PaperRef struct {
	// §3.2 funnel.
	CandidateSites int
	Unreachable    int
	NoAuthFlow     int
	SignupBlocked  int // 47 phone + 6 ID + 3 region
	CrawledSites   int
	EmailConfirm   int
	BotDetection   int

	// §4.2 headline.
	Senders            int
	SenderPct          float64
	Receivers          int
	LeakyRequests      int
	MeanReceivers      float64
	SendersAtLeast3Pct float64
	MaxReceivers       int

	// Table 1a: senders / receivers by method.
	MethodSenders   map[string]int
	MethodReceivers map[string]int

	// Table 1b: senders / receivers by encoding.
	EncodingSenders   map[string]int
	EncodingReceivers map[string]int

	// Table 1c: senders / receivers by PII type set.
	PIISenders   map[string]int
	PIIReceivers map[string]int

	// Figure 2.
	FacebookSenderPct float64

	// §5.2.
	TrackingProviders     int
	MultiSenderReceivers  int // "same ID from more than one sender"
	SingleSenderReceivers int
	// Table2Senders is the per-provider sender count (summing the
	// paper's per-encoding rows).
	Table2Senders map[string]int

	// §4.2.3 mailbox.
	InboxMails int
	SpamMails  int

	// Table 3.
	PolicyNotSpecific   int
	PolicySpecific      int
	PolicyNoDescription int
	PolicyExplicitNot   int

	// §7.1.
	BraveSenderReductionPct   float64
	BraveReceiverReductionPct float64
	BraveMissedReceivers      int
	BraveSignupFailures       int

	// §7.2, Table 4 totals.
	EasyListSendersTotal      int
	EasyPrivacySendersTotal   int
	CombinedSendersTotal      int
	EasyListReceiversTotal    int
	EasyPrivacyReceiversTotal int
	CombinedReceiversTotal    int
	MissedTrackerDomains      []string
}

// Paper is the reference instance.
var Paper = PaperRef{
	CandidateSites: 404,
	Unreachable:    22,
	NoAuthFlow:     19,
	SignupBlocked:  56,
	CrawledSites:   307,
	EmailConfirm:   68,
	BotDetection:   43,

	Senders:            130,
	SenderPct:          42.3,
	Receivers:          100,
	LeakyRequests:      1522,
	MeanReceivers:      2.97,
	SendersAtLeast3Pct: 46.15,
	MaxReceivers:       16,

	MethodSenders: map[string]int{
		"referer header": 3, "uri": 118, "payload body": 43, "cookie": 5, "combined": 27,
	},
	MethodReceivers: map[string]int{
		"referer header": 7, "uri": 78, "payload body": 17, "cookie": 1, "combined": 8,
	},

	EncodingSenders: map[string]int{
		"plaintext": 42, "base64": 19, "md5": 35, "sha1": 9,
		"sha256": 91, "sha256ofmd5": 2, "combined": 21,
	},
	EncodingReceivers: map[string]int{
		"plaintext": 56, "base64": 20, "md5": 24, "sha1": 6,
		"sha256": 30, "sha256ofmd5": 1, "combined": 14,
	},

	PIISenders: map[string]int{
		"email": 116, "username": 1, "email,username": 3, "email,name": 29,
	},
	PIIReceivers: map[string]int{
		"email": 94, "username": 1, "email,username": 6, "email,name": 12,
	},

	FacebookSenderPct: 60.0,

	TrackingProviders:     20,
	MultiSenderReceivers:  34,
	SingleSenderReceivers: 58,
	Table2Senders: map[string]int{
		"facebook.com": 74, "criteo.com": 37, "pinterest.com": 33,
		"snapchat.com": 20, "cquotient.com": 7, "bluecore.com": 5,
		"klaviyo.com": 4, "oracleinfinity.io": 4, "rlcdn.com": 4,
		"omtrdc.net": 3, "castle.io": 2, "custora.com": 2,
		"dotomi.com": 2, "inside-graph.com": 2, "krxd.net": 2,
		"pxf.io": 2, "taboola.com": 2, "thebrighttag.com": 2,
		"yahoo.com": 2, "zendesk.com": 2,
	},

	InboxMails: 2172,
	SpamMails:  141,

	PolicyNotSpecific:   102,
	PolicySpecific:      9,
	PolicyNoDescription: 15,
	PolicyExplicitNot:   4,

	BraveSenderReductionPct:   93.1,
	BraveReceiverReductionPct: 92.0,
	BraveMissedReceivers:      8,
	BraveSignupFailures:       1,

	EasyListSendersTotal:      1,
	EasyPrivacySendersTotal:   95,
	CombinedSendersTotal:      102,
	EasyListReceiversTotal:    8,
	EasyPrivacyReceiversTotal: 65,
	CombinedReceiversTotal:    72,
	MissedTrackerDomains:      []string{"custora.com", "taboola.com", "zendesk.com"},
}
