package piileak_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestCLIToolsPipeline builds every command and drives the documented
// pipeline end to end: crawl → detect/track/pcap, plus the standalone
// audit tools.
func TestCLIToolsPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	dir := t.TempDir()
	tools := []string{"piicrawl", "piidetect", "piitrack", "piipolicy", "piiguard", "piiblock", "piipcap", "piirepro"}
	for _, tool := range tools {
		bin := filepath.Join(dir, tool)
		out, err := exec.Command("go", "build", "-o", bin, "./cmd/"+tool).CombinedOutput()
		if err != nil {
			t.Fatalf("building %s: %v\n%s", tool, err, out)
		}
	}
	run := func(tool string, args ...string) string {
		t.Helper()
		cmd := exec.Command(filepath.Join(dir, tool), args...)
		out, err := cmd.Output()
		if err != nil {
			stderr := ""
			if ee, ok := err.(*exec.ExitError); ok {
				stderr = string(ee.Stderr)
			}
			t.Fatalf("%s %v: %v\n%s", tool, args, err, stderr)
		}
		return string(out)
	}

	ds := filepath.Join(dir, "ds.json.gz")
	run("piicrawl", "-small", "-funnel", "-o", ds)
	if fi, err := os.Stat(ds); err != nil || fi.Size() == 0 {
		t.Fatalf("dataset not written: %v", err)
	}

	detect := run("piidetect", "-i", ds)
	if !strings.Contains(detect, "Table 1a") || !strings.Contains(detect, "facebook.com") {
		t.Errorf("piidetect output unexpected:\n%s", detect[:min(400, len(detect))])
	}

	track := run("piitrack", "-i", ds)
	if !strings.Contains(track, "Table 2") || !strings.Contains(track, "udff[em]") {
		t.Errorf("piitrack output unexpected:\n%s", track[:min(400, len(track))])
	}

	pcapPath := filepath.Join(dir, "crawl.pcap")
	run("piipcap", "-i", ds, "-o", pcapPath)
	if fi, err := os.Stat(pcapPath); err != nil || fi.Size() < 1000 {
		t.Fatalf("pcap not written: %v", err)
	}

	policy := run("piipolicy", "-small")
	if !strings.Contains(policy, "Table 3") {
		t.Errorf("piipolicy output unexpected:\n%s", policy)
	}

	guard := run("piiguard", "-small")
	if !strings.Contains(guard, "Brave") || !strings.Contains(guard, "Firefox") {
		t.Errorf("piiguard output unexpected:\n%s", guard)
	}

	block := run("piiblock", "-small")
	if !strings.Contains(block, "EasyPrivacy") {
		t.Errorf("piiblock output unexpected:\n%s", block)
	}

	repro := run("piirepro", "-small", "-experiments", "E0,E8")
	if !strings.Contains(repro, "E0") || !strings.Contains(repro, "Table 3") {
		t.Errorf("piirepro output unexpected:\n%s", repro[:min(400, len(repro))])
	}

	jsonOut := run("piirepro", "-small", "-json")
	if !strings.Contains(jsonOut, `"headline"`) {
		t.Errorf("piirepro -json output unexpected")
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
