module piileak

go 1.22
