package piileak_test

import (
	"context"
	"fmt"
	"log"

	"piileak"
)

// ExampleNewStudy runs a scaled-down study end to end and prints the
// populations the pipeline recovers.
func ExampleNewStudy() {
	study, err := piileak.NewStudy(piileak.SmallConfig(7))
	if err != nil {
		log.Fatal(err)
	}
	if err := study.Run(context.Background()); err != nil {
		log.Fatal(err)
	}
	h := study.Analysis.Headline()
	fmt.Printf("senders: %d of %d sites\n", h.Senders, h.TotalSites)
	fmt.Printf("receivers: %d\n", h.Receivers)
	// Output:
	// senders: 30 of 48 sites
	// receivers: 100
}

// ExampleStudy_Tracking classifies the persistent-tracking providers of
// a completed study.
func ExampleStudy_Tracking() {
	study, err := piileak.NewStudy(piileak.SmallConfig(7))
	if err != nil {
		log.Fatal(err)
	}
	if err := study.Run(context.Background()); err != nil {
		log.Fatal(err)
	}
	cls, err := study.Tracking()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("top tracker: %s\n", cls.Trackers[0].Display())
	// Output:
	// top tracker: facebook.com
}

// ExampleExperimentByID looks up and runs one registered experiment.
func ExampleExperimentByID() {
	e, ok := piileak.ExperimentByID("E8")
	fmt.Println(ok, e.Title)
	// Output:
	// true Table 3 — privacy-policy disclosures
}
