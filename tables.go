package piileak

import (
	"piileak/internal/report"
)

// Table1 renders the paper's Table 1 — the §4.2 leak breakdowns by
// method (1a), encoding/hashing (1b) and PII type (1c) — as the text
// panels the CLIs print. The rendering is a pure function of the
// study's analysis, so two runs with identical leak output produce
// byte-identical tables; piiserve pins its API results against this.
func (s *Study) Table1() (string, error) {
	if err := s.mustRun(); err != nil {
		return "", err
	}
	a := s.Analysis
	senders, receivers := len(a.Senders), len(a.Receivers)
	return report.Breakdown("Table 1a — by method", a.ByMethod(), senders, receivers) + "\n" +
		report.Breakdown("Table 1b — by encoding/hashing", a.ByEncoding(), senders, receivers) + "\n" +
		report.Breakdown("Table 1c — by PII type", a.ByPIIType(), senders, receivers), nil
}

// Table2 renders the §5.2 persistent-tracking provider table.
func (s *Study) Table2() (string, error) {
	cls, err := s.Tracking()
	if err != nil {
		return "", err
	}
	return report.Table2(cls.Trackers), nil
}

// Table4 renders the §7.2 blocklist evaluation table.
func (s *Study) Table4() (string, error) {
	t4, err := s.EvaluateBlocklists()
	if err != nil {
		return "", err
	}
	return report.Table4(t4), nil
}
