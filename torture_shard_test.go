package piileak

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"os/exec"
	"reflect"
	"strconv"
	"testing"

	"piileak/internal/browser"
	"piileak/internal/core"
	"piileak/internal/crawler"
	"piileak/internal/dnssim"
	"piileak/internal/pii"
	"piileak/internal/pipeline"
	"piileak/internal/shard"
)

// The sharded torture harness: the kill-at-a-checkpoint-append machinery
// of torture_test.go pointed at shard workers. Each re-execed child runs
// one shard of a K-way split end to end (crawl + detect + result file);
// the parent kills children at seeded random append points — including
// mid-record — re-runs them until every shard survives, then verifies
// and merges the shard results. The merged leak list, analysis and thin
// dataset must be byte-identical to an unsharded streamed run that was
// never interrupted.

const shardTortureK = 2

// TestTortureShardChild is the subprocess body: one shard worker that
// may be configured to kill itself partway through a checkpoint append.
// It only runs when re-exec'd by the sharded torture parent.
func TestTortureShardChild(t *testing.T) {
	if os.Getenv("PIILEAK_SHARD_TORTURE_CHILD") != "1" {
		t.Skip("shard torture child: only runs re-exec'd by TestTortureShardedCrashConsistency")
	}
	killAt, _ := strconv.Atoi(os.Getenv("PIILEAK_SHARD_TORTURE_KILL_N"))
	killEvent := os.Getenv("PIILEAK_SHARD_TORTURE_KILL_EVENT")
	if killAt > 0 {
		crawler.CheckpointFailpoint = func(event string, appends int) {
			if event == killEvent && appends >= killAt {
				os.Exit(tortureExitCode)
			}
		}
	}
	sh, err := strconv.Atoi(os.Getenv("PIILEAK_SHARD_TORTURE_SHARD"))
	if err != nil {
		t.Fatal(err)
	}
	eco := tortureEcosystem()
	cands, err := pii.BuildCandidates(eco.Persona, pii.CandidateConfig{MaxDepth: 2})
	if err != nil {
		t.Fatal(err)
	}
	det := core.NewDetector(cands, dnssim.NewClassifier(eco.Zone))
	if _, err := shard.RunWorker(context.Background(), eco, browser.Firefox88(), det, shard.WorkerConfig{
		Shard:  sh,
		Shards: shardTortureK,
		Dir:    os.Getenv("PIILEAK_SHARD_TORTURE_DIR"),
	}); err != nil {
		t.Fatal(err)
	}
}

// runShardTortureChild re-execs the test binary as one shard worker and
// returns its exit code (0 = shard completed and wrote its verified
// result, tortureExitCode = killed at the configured failpoint).
func runShardTortureChild(t *testing.T, dir string, sh, killAt int, killEvent string) int {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-test.run=^TestTortureShardChild$", "-test.count=1")
	cmd.Env = append(os.Environ(),
		"PIILEAK_SHARD_TORTURE_CHILD=1",
		"PIILEAK_SHARD_TORTURE_DIR="+dir,
		fmt.Sprintf("PIILEAK_SHARD_TORTURE_SHARD=%d", sh),
		fmt.Sprintf("PIILEAK_SHARD_TORTURE_KILL_N=%d", killAt),
		"PIILEAK_SHARD_TORTURE_KILL_EVENT="+killEvent,
	)
	output, err := cmd.CombinedOutput()
	if err == nil {
		return 0
	}
	if ee, ok := err.(*exec.ExitError); ok && ee.ExitCode() == tortureExitCode {
		return tortureExitCode
	}
	t.Fatalf("shard torture child %d (kill %s@%d): %v\n%s", sh, killEvent, killAt, err, output)
	return -1
}

// TestTortureShardedCrashConsistency kills re-execed shard workers at
// seeded random checkpoint appends — leaving genuinely torn tails and
// absent result files — resumes each shard until it completes, then
// merges and requires byte-identity with an uninterrupted unsharded
// run. This is the subprocess arm of the tentpole invariant; the
// in-process arm is TestShardedRunsByteIdentical.
func TestTortureShardedCrashConsistency(t *testing.T) {
	eco := tortureEcosystem()
	cands, err := pii.BuildCandidates(eco.Persona, pii.CandidateConfig{MaxDepth: 2})
	if err != nil {
		t.Fatal(err)
	}
	det := core.NewDetector(cands, dnssim.NewClassifier(eco.Zone))
	ref, err := pipeline.Run(context.Background(), eco, browser.Firefox88(), det, pipeline.Options{})
	if err != nil {
		t.Fatal(err)
	}
	refLeaks, err := json.MarshalIndent(ref.Leaks, "", " ")
	if err != nil {
		t.Fatal(err)
	}
	var refDS bytes.Buffer
	if err := ref.Dataset.WriteJSON(&refDS); err != nil {
		t.Fatal(err)
	}

	rounds, maxKills := 2, 3
	if testing.Short() {
		rounds, maxKills = 1, 2
	}
	rng := rand.New(rand.NewSource(1213))
	events := []string{"pre", "mid", "post"}

	for round := 0; round < rounds; round++ {
		dir := t.TempDir()
		totalKills := 0
		for sh := 0; sh < shardTortureK; sh++ {
			finished := false
			for k := 0; k < maxKills && !finished; k++ {
				killAt := 1 + rng.Intn(8)
				event := events[rng.Intn(len(events))]
				if runShardTortureChild(t, dir, sh, killAt, event) == 0 {
					finished = true
				} else {
					totalKills++
				}
			}
			if !finished && runShardTortureChild(t, dir, sh, 0, "") != 0 {
				t.Fatalf("round %d: shard %d's uninterrupted resume did not complete", round, sh)
			}
		}
		t.Logf("round %d: shards survived %d kills", round, totalKills)

		plan, err := shard.NewPlan(eco, shardTortureK)
		if err != nil {
			t.Fatal(err)
		}
		res, report, err := shard.MergeDir(eco, browser.Firefox88(), plan, dir)
		if err != nil {
			t.Fatal(err)
		}
		if report.Partial || len(report.Completed) != shardTortureK {
			t.Fatalf("round %d: merge degraded after kills: %+v", round, report)
		}
		gotLeaks, err := json.MarshalIndent(res.Leaks, "", " ")
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(refLeaks, gotLeaks) {
			t.Fatalf("round %d: merged leaks after %d kills are not byte-identical (%d vs %d bytes)",
				round, totalKills, len(gotLeaks), len(refLeaks))
		}
		if got, want := res.Analysis.Headline(), ref.Analysis.Headline(); got != want {
			t.Errorf("round %d: headline diverges:\n%+v\n%+v", round, got, want)
		}
		if !reflect.DeepEqual(res.Tracking.Classification(), ref.Tracking.Classification()) {
			t.Errorf("round %d: Table 2 classification diverges", round)
		}
		var gotDS bytes.Buffer
		if err := res.Dataset.WriteJSON(&gotDS); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(refDS.Bytes(), gotDS.Bytes()) {
			t.Errorf("round %d: merged dataset diverges (%d vs %d bytes)", round, gotDS.Len(), refDS.Len())
		}
	}
}
