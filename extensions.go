package piileak

import (
	"fmt"

	"piileak/internal/browser"
	"piileak/internal/core"
	"piileak/internal/countermeasure"
	"piileak/internal/crawler"
	"piileak/internal/detect"
	"piileak/internal/httpmodel"
	"piileak/internal/pii"
	"piileak/internal/report"
	"piileak/internal/trackerdb"
	"piileak/internal/tracking"
	"piileak/internal/webgen"
)

// The X experiments go beyond the paper's evaluation: X1 turns §5.1's
// cross-browser/cross-device presumption into a measurement, X2
// implements the paper's stated future work (crowdsourced collection),
// X3 reconstructs the tracker-side profile store of Figure 3, and X4
// re-runs the collection with an automated crawler to quantify §3.2's
// manual-methodology choice. A4 and A5 are additional ablations on the
// countermeasure and detection design points.

func init() {
	extraExperiments = []Experiment{
		{"X1", "Extension — cross-browser identifier linkage (§5.1)", runX1, false},
		{"X2", "Extension — crowdsourced collection (paper's future work)", runX2, false},
		{"X3", "Extension — tracker-side profile reconstruction (Figure 3)", runX3, false},
		{"X4", "Extension — automated vs manual collection (§3.2)", runX4, false},
		{"A4", "Ablation — Brave shields without CNAME uncloaking", runA4, false},
		{"A5", "Ablation — minimum candidate-token length vs false positives", runA5, true},
	}
}

// runA5 quantifies why the candidate set drops short tokens: 4-hex-char
// CRC16 digests of short fields collide with substrings of the hashed
// identifiers that saturate tracking traffic, producing spurious leak
// reports. The ablation re-runs detection with MinTokenLen 4 and counts
// the matches the default (8) configuration rejects.
func runA5(s *Study) (string, error) {
	if err := s.mustRun(); err != nil {
		return "", err
	}
	if err := s.requireCaptures("A5"); err != nil {
		return "", err
	}
	eng, err := detect.NewEngine(s.Eco.Persona, s.Detector.CNAME, detect.Config{
		Candidates: pii.CandidateConfig{
			MaxDepth:    2,
			MinTokenLen: 4,
		},
	})
	if err != nil {
		return "", err
	}
	short := eng.Candidates()
	det := eng.NewScanner()

	baselineKeys := map[string]bool{}
	for i := range s.Leaks {
		l := &s.Leaks[i]
		baselineKeys[l.Site+"|"+l.Receiver+"|"+l.Token.Value] = true
	}

	total, spurious := 0, 0
	shortTokens := map[string]int{}
	for _, c := range s.Dataset.Successes() {
		for _, l := range det.DetectSite(c.Domain, c.Records) {
			total++
			if !baselineKeys[l.Site+"|"+l.Receiver+"|"+l.Token.Value] {
				spurious++
				if len(l.Token.Value) < 8 {
					shortTokens[l.Token.Value]++
				}
			}
		}
	}

	var worst string
	worstN := 0
	for tok, n := range shortTokens {
		if n > worstN || (n == worstN && tok < worst) {
			worst, worstN = tok, n
		}
	}
	rows := [][]string{
		{"8 (default)", itoa(s.Candidates.Size()), itoa(len(s.Leaks)), "0"},
		{"4", itoa(short.Size()), itoa(total), itoa(spurious)},
	}
	out := "A5 — minimum token length vs false positives\n" +
		report.Table([]string{"min length", "tokens", "leak matches", "spurious"}, rows)
	if worstN > 0 {
		out += fmt.Sprintf("worst offender: %q matched %d times inside longer hex digests\n", worst, worstN)
	}
	out += "Short checksum tokens (CRC16 of short fields) collide with 4-gram\n" +
		"substrings of the SHA-256 identifiers that dominate tracker traffic;\n" +
		"the default MinTokenLen=8 removes every such false positive.\n"
	return out, nil
}

// runX4 quantifies the paper's §3.2 methodology choice: an OpenWPM-style
// automated crawler (keyword form matching, no CAPTCHA solving, no
// mailbox integration) re-runs the collection, and its coverage is
// compared with the manual operator's.
func runX4(s *Study) (string, error) {
	if err := s.mustRun(); err != nil {
		return "", err
	}
	auto := crawler.CrawlAutomated(s.Eco, s.Config.Browser)
	counts := auto.FunnelCounts()

	var autoLeaks []core.Leak
	sc := s.Engine.NewScanner()
	for i := range auto.Crawls {
		c := &auto.Crawls[i]
		autoLeaks = append(autoLeaks, sc.DetectSite(c.Domain, c.Records)...)
	}
	autoAnalysis := core.Analyze(autoLeaks, len(auto.Successes()))
	autoTrackers := tracking.Classify(autoLeaks)
	manualTrackers, err := s.Tracking()
	if err != nil {
		return "", err
	}

	cmp := []report.ComparisonRow{
		{Metric: "completed auth flows", Paper: itoa(Paper.CrawledSites) + " (manual)", Measured: itoa(counts[crawler.OutcomeSuccess])},
		{Metric: "blocked by bot detection", Paper: "0 (human passes)", Measured: itoa(counts[crawler.OutcomeAutoBotDetected])},
		{Metric: "forms the heuristics cannot fill", Paper: "0 (human reads labels)", Measured: itoa(counts[crawler.OutcomeAutoFormUnmatched])},
		{Metric: "stuck at e-mail confirmation", Paper: "0 (operator clicks the link)", Measured: itoa(counts[crawler.OutcomeAutoNoConfirm])},
		{Metric: "senders observed", Paper: itoa(Paper.Senders), Measured: itoa(len(autoAnalysis.Senders))},
		{Metric: "tracking providers classifiable", Paper: itoa(len(manualTrackers.Trackers)), Measured: itoa(len(autoTrackers.Trackers))},
	}
	out := report.Comparison("X4 — automated crawler vs the paper's manual collection", cmp)
	out += "\nSign-up-time tag events still fire before automation stalls, so some\n" +
		"senders remain visible; the persistence cue (subpage re-identification)\n" +
		"is what the automated crawler loses on confirmation-gated sites.\n"
	return out, nil
}

// runA4 re-runs the §7.1 Brave evaluation with CNAME uncloaking turned
// off (Brave before 1.25): the cloaked Adobe deployment hides behind
// first-party subdomains and survives, quantifying how much the
// uncloaking feature contributes.
func runA4(s *Study) (string, error) {
	if err := s.mustRun(); err != nil {
		return "", err
	}
	modern := browser.Brave129(s.Eco.BraveShields)
	legacy := modern
	legacy.Version = "1.24 (no CNAME uncloaking)"
	legacy.UncloakCNAME = false

	results := countermeasure.EvaluateBrowsers(s.Eco, s.Config.Browser, []browser.Profile{modern, legacy})
	out := report.Browsers(results)

	var modernRecv, legacyRecv int
	var legacyMissed []string
	for _, r := range results {
		switch r.Browser {
		case "Brave 1.29.81":
			modernRecv = r.Receivers
		case "Brave 1.24 (no CNAME uncloaking)":
			legacyRecv = r.Receivers
			legacyMissed = r.MissedReceivers
		}
	}
	cloakedSurvives := "no"
	for _, d := range legacyMissed {
		if d == "omtrdc.net" {
			cloakedSurvives = "yes"
		}
	}
	cmp := []report.ComparisonRow{
		{Metric: "surviving receivers (with uncloaking)", Paper: itoa(Paper.BraveMissedReceivers), Measured: itoa(modernRecv)},
		{Metric: "surviving receivers (without)", Paper: "—", Measured: itoa(legacyRecv)},
		{Metric: "cloaked Adobe survives without uncloaking", Paper: "—", Measured: cloakedSurvives},
	}
	return out + "\n" + report.Comparison("A4 — the CNAME-uncloaking contribution", cmp), nil
}

// extraExperiments is appended to the registry by Experiments.
var extraExperiments []Experiment

func runX1(s *Study) (string, error) {
	if err := s.mustRun(); err != nil {
		return "", err
	}
	detectUnder := func(profile browser.Profile) []core.Leak {
		ds := crawler.CrawlSenders(s.Eco, profile)
		var leaks []core.Leak
		sc := s.Engine.NewScanner()
		for _, c := range ds.Crawls {
			leaks = append(leaks, sc.DetectSite(c.Domain, c.Records)...)
		}
		return leaks
	}
	links := tracking.CrossContext([]tracking.ContextLeaks{
		{Context: "laptop-firefox", Leaks: detectUnder(browser.Firefox88())},
		{Context: "phone-chrome", Leaks: detectUnder(browser.Chrome93())},
	})
	linkers := tracking.LinkingReceivers(links)
	linkerSet := map[string]bool{}
	for _, r := range linkers {
		linkerSet[r] = true
	}

	cls, err := s.Tracking()
	if err != nil {
		return "", err
	}
	trackersLinking := 0
	for i := range cls.Trackers {
		if linkerSet[cls.Trackers[i].Receiver] {
			trackersLinking++
		}
	}

	// Merged browsing history size for the biggest linker.
	maxSites, maxReceiver := 0, ""
	for _, l := range links {
		if n := len(l.Sites); n > maxSites {
			maxSites, maxReceiver = n, l.Receiver
		}
	}

	var cmp []report.ComparisonRow
	cmp = append(cmp,
		report.ComparisonRow{Metric: "receivers linking both browsers", Paper: "presumed (§5.1)", Measured: itoa(len(linkers))},
		report.ComparisonRow{Metric: "Table 2 trackers that link", Paper: "all 20 (presumed)", Measured: fmt.Sprintf("%d of %d", trackersLinking, len(cls.Trackers))},
		report.ComparisonRow{Metric: "largest merged history", Paper: "—", Measured: fmt.Sprintf("%d sites at %s", maxSites, maxReceiver)},
	)
	out := report.Comparison("X1 — cross-browser linkage via leaked PII", cmp)
	out += "\nThe same persona signed up in two fresh browser profiles; every receiver\n" +
		"above obtained an identical PII-derived identifier in both, joining the\n" +
		"profiles without any cookie — §5.1's cross-browser/cross-device scenario.\n"
	return out, nil
}

func runX2(s *Study) (string, error) {
	if err := s.mustRun(); err != nil {
		return "", err
	}
	before := tracking.Classify(s.Leaks)

	// A second "crowdsourced" cohort: another user's browsing — a
	// different site sample (different seed) leaking to the same
	// receiver population.
	cfg2 := s.Config.Ecosystem
	cfg2.Seed = s.Config.Ecosystem.Seed + 1
	eco2, err := webgen.Generate(cfg2)
	if err != nil {
		return "", err
	}
	ds2 := crawler.Crawl(eco2, s.Config.Browser)
	var merged []core.Leak
	merged = append(merged, s.Leaks...)
	sc := s.Engine.NewScanner()
	for _, c := range ds2.Successes() {
		merged = append(merged, sc.DetectSite(c.Domain, c.Records)...)
	}
	after := tracking.Classify(merged)

	cmp := []report.ComparisonRow{
		{Metric: "cohorts", Paper: "1 operator (limitation)", Measured: "2 (crowdsourced)"},
		{Metric: "single-sender receivers", Paper: itoa(before.SingleSender), Measured: itoa(after.SingleSender)},
		{Metric: "receivers with same ID from >1 sender", Paper: itoa(before.MultiSenderID), Measured: itoa(after.MultiSenderID)},
		{Metric: "classifiable tracking providers", Paper: itoa(len(before.Trackers)), Measured: itoa(len(after.Trackers))},
	}
	out := report.Comparison("X2 — crowdsourced collection (single cohort vs two)", cmp)
	out += "\nThe paper notes its single-operator dataset leaves 58 receivers observed\n" +
		"once, so their tracking behaviour cannot be confirmed; pooling a second\n" +
		"cohort's crawl moves most of that tail into the analyzable population.\n"
	return out, nil
}

// runX3 plays the tracker's role: it feeds the detected leaks into a
// simulated provider-side profile store and reports the browsing
// history the provider can reconstruct for the persona — Figure 3's
// "generate and store a unique persistent identifier ... with his/her
// browsing history on their tracking servers", made concrete.
func runX3(s *Study) (string, error) {
	if err := s.mustRun(); err != nil {
		return "", err
	}
	cls, err := s.Tracking()
	if err != nil {
		return "", err
	}

	var rows [][]string
	var fbHistory string
	for i := range cls.Trackers {
		tr := &cls.Trackers[i]
		srv := trackerdb.NewServer(tr.Receiver)
		srv.IngestAll(s.Leaks, "laptop-firefox")
		profiles := srv.Profiles()
		if len(profiles) == 0 {
			continue
		}
		p := profiles[0]
		subpages := 0
		for _, v := range p.Visits {
			if v.Phase == httpmodel.PhaseSubpage {
				subpages++
			}
		}
		rows = append(rows, []string{
			tr.Display(),
			itoa(srv.ProfileCount()),
			itoa(len(p.Sites)),
			itoa(len(p.Visits)),
			itoa(subpages),
			p.Encoding,
		})
		if tr.Receiver == "facebook.com" {
			// A short excerpt of the reconstructed history.
			excerpt := p
			if len(excerpt.Visits) > 6 {
				excerpt.Visits = excerpt.Visits[:6]
			}
			fbHistory = excerpt.History()
		}
	}
	out := "X3 — what each tracking provider's server can store about the persona\n" +
		report.Table([]string{"provider", "profiles", "sites", "events", "subpage events", "identifier"}, rows)
	if fbHistory != "" {
		out += "\nfacebook.com's reconstructed profile (first events):\n" + fbHistory
	}
	out += "\nA profile keyed by hashed e-mail survives cookie clearing, private\n" +
		"browsing and browser switches — the paper's 'alternative to third-party\n" +
		"cookies'.\n"
	return out, nil
}
