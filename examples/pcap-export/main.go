// Pcap-export: run a small study and export one leaking site's traffic
// as a Wireshark-openable capture, then parse it back with the built-in
// decoder to show what an analyst would see on the wire.
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"
	"os"

	"piileak"
	"piileak/internal/pcap"
)

func main() {
	study, err := piileak.NewStudy(piileak.SmallConfig(29))
	if err != nil {
		log.Fatal(err)
	}
	if err := study.Run(context.Background()); err != nil {
		log.Fatal(err)
	}

	// Export the hero sender's crawl (the site with the most
	// receivers).
	hero := study.Analysis.Headline().MaxReceiverSite
	var buf bytes.Buffer
	pw := pcap.NewWriter(&buf)
	exchanges := 0
	for _, c := range study.Dataset.Successes() {
		if c.Domain != hero {
			continue
		}
		if err := pw.WriteRecords(c.Records); err != nil {
			log.Fatal(err)
		}
		exchanges = len(c.Records)
	}

	path := "hero-crawl.pcap"
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("exported %d HTTP exchanges from %s to %s (%d bytes)\n",
		exchanges, hero, path, buf.Len())

	// Decode it back: count the connections and show the first leaky
	// stream the way tcpdump would.
	packets, err := pcap.Parse(bytes.NewReader(buf.Bytes()))
	if err != nil {
		log.Fatal(err)
	}
	syns := 0
	for i := range packets {
		if packets[i].SYN() && !packets[i].ACK() {
			syns++
		}
	}
	fmt.Printf("capture holds %d packets across %d TCP connections\n", len(packets), syns)

	// Find one of the hero site's detected leak tokens in the raw
	// streams — the identifier as it crossed the wire.
	var token, receiver string
	for _, l := range study.Leaks {
		if l.Site == hero && len(l.Token.Value) < 80 {
			token, receiver = l.Token.Value, l.Receiver
			break
		}
	}
	for key, stream := range pcap.Reassemble(packets) {
		if key.DstPort != 80 || !bytes.Contains(stream, []byte(token)) {
			continue
		}
		line := stream
		if i := bytes.IndexByte(line, '\r'); i >= 0 {
			line = line[:i]
		}
		if len(line) > 120 {
			line = append(line[:117:117], []byte("...")...)
		}
		fmt.Printf("a leak to %s, as captured on the wire:\n  %s\n", receiver, line)
		break
	}
}
