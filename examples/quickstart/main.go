// Quickstart: generate a small synthetic web, run the crawl and the leak
// detection, and print the headline results — the whole study in a dozen
// lines of API.
package main

import (
	"context"
	"fmt"
	"log"

	"piileak"
	"piileak/internal/pii"
	"piileak/internal/report"
)

func main() {
	study, err := piileak.NewStudy(piileak.SmallConfig(7))
	if err != nil {
		log.Fatal(err)
	}
	if err := study.Run(context.Background()); err != nil {
		log.Fatal(err)
	}

	h := study.Analysis.Headline()
	fmt.Printf("Crawled %d shopping sites as %q.\n", h.TotalSites, pii.Redact(study.Dataset.Persona.Email))
	fmt.Printf("%d sites (%.1f%%) leaked PII to %d third parties over %d requests.\n\n",
		h.Senders, h.LeakRate, h.Receivers, h.LeakyRequests)

	fmt.Println(report.Figure2(study.Analysis.TopReceivers(10)))

	cls, err := study.Tracking()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d third parties use the leaked PII for persistent tracking:\n", len(cls.Trackers))
	for _, tr := range cls.Trackers {
		fmt.Printf("  %-20s %d senders, identifier params on subpages\n", tr.Display(), tr.Senders)
	}
}
