// Browser-compare: reproduce the §7.1 experiment interactively — re-crawl
// the leaking sites under every browser profile and show what each one
// actually prevents.
package main

import (
	"fmt"
	"log"

	"piileak"
	"piileak/internal/report"
)

func main() {
	study, err := piileak.NewStudy(piileak.SmallConfig(13))
	if err != nil {
		log.Fatal(err)
	}

	results := study.EvaluateBrowsers()
	fmt.Println(report.Browsers(results))

	fmt.Println("Reading the table:")
	fmt.Println(" - ITP (Safari) and ETP (Firefox) block third-party COOKIES, but PII")
	fmt.Println("   identifiers travel in URLs and request bodies, so leakage is unchanged.")
	fmt.Println(" - Brave's Shields block the tracker REQUESTS themselves (including")
	fmt.Println("   CNAME-cloaked ones), which is why only Brave moves the needle —")
	fmt.Println("   and even Brave misses the niche receivers listed above.")
}
