// Blocklist-tuning: reproduce the §7.2 finding that EasyList+EasyPrivacy
// miss some PII-tracking providers, then show how adding three rules
// closes the gap — the workflow of a filter-list maintainer.
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	"piileak"
	"piileak/internal/countermeasure"
)

func main() {
	study, err := piileak.NewStudy(piileak.SmallConfig(23))
	if err != nil {
		log.Fatal(err)
	}
	if err := study.Run(context.Background()); err != nil {
		log.Fatal(err)
	}
	cls, err := study.Tracking()
	if err != nil {
		log.Fatal(err)
	}
	var trackers []string
	for _, tr := range cls.Trackers {
		trackers = append(trackers, tr.Receiver)
	}

	evaluate := func(label, elText, epText string) []string {
		lists, err := countermeasure.ParseLists(elText, epText)
		if err != nil {
			log.Fatal(err)
		}
		t4 := countermeasure.EvaluateBlocklists(study.Leaks, study.Dataset, lists, trackers)
		for _, r := range t4.Rows {
			if r.Metric == "senders" && r.Method == "total" {
				fmt.Printf("%-22s senders covered: EasyList %d, EasyPrivacy %d, combined %d/%d\n",
					label, r.EasyList.Count, r.EasyPrivacy.Count, r.Combined.Count, r.Combined.Total)
			}
		}
		return t4.MissedTrackers
	}

	missed := evaluate("stock lists:", study.Eco.EasyListText, study.Eco.EasyPrivacyText)
	fmt.Printf("tracking providers escaping the stock lists: %s\n\n", strings.Join(missed, ", "))

	// Patch EasyPrivacy with one rule per escapee and re-evaluate.
	var patch strings.Builder
	patch.WriteString(study.Eco.EasyPrivacyText)
	patch.WriteString("! --- local additions ---\n")
	for _, d := range missed {
		patch.WriteString("||" + d + "^$third-party\n")
	}
	missedAfter := evaluate("patched lists:", study.Eco.EasyListText, patch.String())
	if len(missedAfter) == 0 {
		fmt.Println("all tracking providers covered after the patch")
	} else {
		fmt.Printf("still escaping: %s\n", strings.Join(missedAfter, ", "))
	}
}
