// Tracker-audit: use the detection library directly on hand-captured
// traffic — the workflow of an analyst who exported requests from their
// own browser (HAR-style) and wants to know whether their sign-up leaked
// PII, in which encoding, and to whom.
package main

import (
	"fmt"
	"log"

	"piileak/internal/core"
	"piileak/internal/dnssim"
	"piileak/internal/httpmodel"
	"piileak/internal/pii"
)

func main() {
	// The identity that was typed into the sign-up form.
	persona := pii.Persona{
		Username:  "jdoe42",
		FirstName: "Jane",
		LastName:  "Doe",
		Email:     "jane.doe@example.org",
		Phone:     "+15550123456",
		DOB:       "1990-01-02",
		Gender:    "female",
		JobTitle:  "engineer",
		City:      "Berlin",
		Postal:    "10115",
		Street:    "Example Str. 1",
		Country:   "DE",
	}

	// Build the candidate set: plaintext + every encoding/hash chain up
	// to depth 2 (≈ 10k tokens, compiled into one automaton).
	candidates, err := pii.BuildCandidates(persona, pii.CandidateConfig{MaxDepth: 2})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("candidate set: %d tokens, %d automaton states\n\n",
		candidates.Size(), candidates.States())

	// The DNS view observed during capture: one first-party subdomain is
	// CNAME-cloaked to Adobe.
	zone := dnssim.NewZone()
	zone.AddCNAME("smetrics.myshop.example", "myshop.sc.omtrdc.net")

	detector := core.NewDetector(candidates, dnssim.NewClassifier(zone))

	// Three captured requests: a facebook pixel with a hashed email in
	// the URI, a JSON beacon with a base64 email, and a pageview to the
	// cloaked subdomain carrying an identifying cookie.
	sha := pii.MustApplyChain(persona.Email, []string{"sha256"})
	b64 := pii.MustApplyChain(persona.Email, []string{"base64"})
	records := []httpmodel.Record{
		{
			Seq: 1, Phase: httpmodel.PhaseSignup,
			Request: httpmodel.Request{
				Method: "GET",
				URL:    "https://www.facebook.com/tr/collect?udff[em]=" + string(sha) + "&v=2",
			},
		},
		{
			Seq: 2, Phase: httpmodel.PhaseSignin,
			Request: httpmodel.Request{
				Method:   "POST",
				URL:      "https://api.bluecore.com/events",
				Body:     []byte(`{"data":"` + string(b64) + `","event":"identify"}`),
				BodyType: "application/json",
			},
		},
		{
			Seq: 3, Phase: httpmodel.PhaseSubpage,
			Request: httpmodel.Request{
				Method: "GET",
				URL:    "https://smetrics.myshop.example/b/ss/pageview",
				Cookies: []httpmodel.Cookie{
					{Name: "s_ecid", Value: string(sha), Domain: "smetrics.myshop.example"},
				},
			},
		},
	}

	leaks := detector.DetectSite("myshop.example", records)
	fmt.Printf("%d leaks detected:\n", len(leaks))
	for _, l := range leaks {
		cloak := ""
		if l.Cloaked {
			cloak = " (CNAME-cloaked)"
		}
		fmt.Printf("  %-9s -> %-16s%s  %s of %s in %q\n",
			l.Method, l.Receiver, cloak, l.EncodingLabel(), l.Token.Field.Type, l.Param)
	}
}
