package piileak_test

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"
)

// TestPiicrawlSIGINTLeavesResumableCheckpoint drives the crash-only
// shutdown contract end to end on the built binary: a checkpointing
// crawl interrupted by SIGINT exits 0 with a valid checkpoint, and a
// -resume run completes it to a dataset byte-identical to a run that
// was never interrupted.
func TestPiicrawlSIGINTLeavesResumableCheckpoint(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	if runtime.GOOS == "windows" {
		t.Skip("POSIX signal delivery")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "piicrawl")
	if out, err := exec.Command("go", "build", "-o", bin, "./cmd/piicrawl").CombinedOutput(); err != nil {
		t.Fatalf("building piicrawl: %v\n%s", err, out)
	}

	ref := filepath.Join(dir, "ref.json")
	if out, err := exec.Command(bin, "-o", ref).CombinedOutput(); err != nil {
		t.Fatalf("reference run: %v\n%s", err, out)
	}
	want, err := os.ReadFile(ref)
	if err != nil {
		t.Fatal(err)
	}

	// Interrupted run: wait for the checkpoint to accumulate a few
	// sites, then SIGINT. The contract is exit 0 — progress is on disk.
	ckpt := filepath.Join(dir, "ckpt.jsonl")
	interruptedOut := filepath.Join(dir, "interrupted.json")
	cmd := exec.Command(bin, "-checkpoint", ckpt, "-o", interruptedOut)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	signalled := false
	for deadline := time.Now().Add(30 * time.Second); time.Now().Before(deadline); {
		if data, err := os.ReadFile(ckpt); err == nil && bytes.Count(data, []byte("\n")) >= 6 {
			if err := cmd.Process.Signal(os.Interrupt); err != nil {
				t.Fatal(err)
			}
			signalled = true
			break
		}
		time.Sleep(time.Millisecond)
	}
	if !signalled {
		cmd.Process.Kill()
		cmd.Wait()
		t.Fatal("checkpoint never grew; cannot interrupt")
	}
	if err := cmd.Wait(); err != nil {
		t.Fatalf("interrupted piicrawl exited non-zero: %v\n%s", err, stderr.String())
	}

	// The crawl may have finished in the window between the checkpoint
	// read and the signal; the resume assertions below still hold (a
	// complete checkpoint resumes to the same dataset), the interruption
	// messages just never printed.
	if _, err := os.Stat(interruptedOut); err == nil {
		t.Log("crawl completed before the signal landed; exercising resume over the full checkpoint")
	} else {
		if !strings.Contains(stderr.String(), "interrupted") || !strings.Contains(stderr.String(), "-resume") {
			t.Errorf("interrupted run's stderr missing the resume hint:\n%s", stderr.String())
		}
	}

	resumedOut := filepath.Join(dir, "resumed.json")
	rcmd := exec.Command(bin, "-checkpoint", ckpt, "-resume", "-o", resumedOut)
	var rstderr bytes.Buffer
	rcmd.Stderr = &rstderr
	if err := rcmd.Run(); err != nil {
		t.Fatalf("resume run failed: %v\n%s", err, rstderr.String())
	}
	if !strings.Contains(rstderr.String(), "resume:") {
		t.Errorf("resume run did not report the loaded checkpoint:\n%s", rstderr.String())
	}
	got, err := os.ReadFile(resumedOut)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, got) {
		t.Errorf("resumed dataset is not byte-identical to the uninterrupted run (%d vs %d bytes)", len(got), len(want))
	}
}
