package piileak

import (
	"context"
	"fmt"
	"strings"
	"testing"
	"time"

	"piileak/internal/browser"
	"piileak/internal/core"
	"piileak/internal/crawler"
	"piileak/internal/obs"
	"piileak/internal/pii"
	"piileak/internal/pipeline"
	"piileak/internal/policy"
	"piileak/internal/tracking"
	"piileak/internal/webgen"
)

// Each benchmark regenerates one of the paper's tables or figures
// (DESIGN.md's per-experiment index) over the shared paper-scale study
// and reports the key measured quantity as a custom metric, so
// `go test -bench .` both times the pipeline stage and reprints the
// paper-vs-measured numbers recorded in EXPERIMENTS.md.

func BenchmarkE0_CollectionFunnel(b *testing.B) {
	eco := study(b).Eco
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ds := crawler.Crawl(eco, browser.Firefox88())
		if len(ds.Successes()) != Paper.CrawledSites {
			b.Fatalf("crawled = %d", len(ds.Successes()))
		}
	}
	b.ReportMetric(float64(Paper.CrawledSites), "crawled_sites")
}

func BenchmarkE1_HeadlineLeakage(b *testing.B) {
	s := study(b)
	var h core.Headline
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var leaks []core.Leak
		for _, c := range s.Dataset.Successes() {
			leaks = append(leaks, s.Detector.DetectSite(c.Domain, c.Records)...)
		}
		h = core.Analyze(leaks, len(s.Dataset.Successes())).Headline()
	}
	b.ReportMetric(float64(h.Senders), "senders")
	b.ReportMetric(float64(h.Receivers), "receivers")
	b.ReportMetric(h.LeakRate, "leak_rate_pct")
	b.ReportMetric(float64(h.LeakyRequests), "leaky_requests")
}

func BenchmarkE2_Table1aByMethod(b *testing.B) {
	s := study(b)
	var rows []core.BreakdownRow
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows = s.Analysis.ByMethod()
	}
	for _, r := range rows {
		if r.Label == "uri" {
			b.ReportMetric(float64(r.Senders), "uri_senders")
		}
		if r.Label == "cookie" {
			b.ReportMetric(float64(r.Senders), "cookie_senders")
		}
	}
}

func BenchmarkE3_Table1bByEncoding(b *testing.B) {
	s := study(b)
	var rows []core.BreakdownRow
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows = s.Analysis.ByEncoding()
	}
	for _, r := range rows {
		if r.Label == "sha256" {
			b.ReportMetric(float64(r.Senders), "sha256_senders")
		}
	}
}

func BenchmarkE4_Table1cByPIIType(b *testing.B) {
	s := study(b)
	var rows []core.BreakdownRow
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows = s.Analysis.ByPIIType()
	}
	for _, r := range rows {
		if r.Label == "email,name" {
			b.ReportMetric(float64(r.Senders), "email_name_senders")
		}
	}
}

func BenchmarkE5_Figure2TopReceivers(b *testing.B) {
	s := study(b)
	var top []core.ReceiverRank
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		top = s.Analysis.TopReceivers(15)
	}
	if len(top) > 0 {
		b.ReportMetric(top[0].SenderPct, "facebook_sender_pct")
	}
}

func BenchmarkE6_Table2TrackingProviders(b *testing.B) {
	s := study(b)
	var cls *tracking.Classification
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cls = tracking.Classify(s.Leaks)
	}
	b.ReportMetric(float64(len(cls.Trackers)), "tracking_providers")
	b.ReportMetric(float64(cls.MultiSenderID), "same_id_receivers")
	b.ReportMetric(float64(cls.SingleSender), "single_sender_receivers")
}

func BenchmarkE7_EmailFollowup(b *testing.B) {
	s := study(b)
	var inbox, spam int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		inbox = s.Dataset.Mailbox.Count("inbox")
		spam = s.Dataset.Mailbox.Count("spam")
	}
	b.ReportMetric(float64(inbox), "inbox_mails")
	b.ReportMetric(float64(spam), "spam_mails")
}

func BenchmarkE8_Table3PolicyDisclosure(b *testing.B) {
	s := study(b)
	var tbl policy.Table3
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		tbl, err = s.PolicyAudit()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(tbl.NotSpecific), "not_specific")
	b.ReportMetric(float64(tbl.Specific), "specific")
}

func BenchmarkE9_BrowserCountermeasures(b *testing.B) {
	s := study(b)
	var braveSenders, braveReceivers int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		results := s.EvaluateBrowsers()
		for _, r := range results {
			if strings.HasPrefix(r.Browser, "Brave") {
				braveSenders, braveReceivers = r.Senders, r.Receivers
			}
		}
	}
	b.ReportMetric(float64(braveSenders), "brave_surviving_senders")
	b.ReportMetric(float64(braveReceivers), "brave_surviving_receivers")
}

func BenchmarkE10_Table4Blocklists(b *testing.B) {
	s := study(b)
	var epSenders int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t4, err := s.EvaluateBlocklists()
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range t4.Rows {
			if r.Metric == "senders" && r.Method == "total" {
				epSenders = r.EasyPrivacy.Count
			}
		}
	}
	b.ReportMetric(float64(epSenders), "easyprivacy_senders")
}

func BenchmarkA1_CandidateDepth(b *testing.B) {
	persona := pii.Default()
	for _, depth := range []int{1, 2} {
		b.Run(map[int]string{1: "depth1", 2: "depth2"}[depth], func(b *testing.B) {
			var size int
			for i := 0; i < b.N; i++ {
				cs := pii.MustBuildCandidates(persona, pii.CandidateConfig{MaxDepth: depth})
				size = cs.Size()
			}
			b.ReportMetric(float64(size), "tokens")
		})
	}
}

func BenchmarkA2_MatcherAblation(b *testing.B) {
	s := study(b)
	// One representative leaky request blob.
	var blob []byte
	for _, c := range s.Dataset.Successes() {
		for i := range c.Records {
			if len(c.Records[i].Request.URL) > 80 {
				blob = []byte(c.Records[i].Request.URL)
				break
			}
		}
		if blob != nil {
			break
		}
	}
	b.Run("aho-corasick", func(b *testing.B) {
		b.SetBytes(int64(len(blob)))
		for i := 0; i < b.N; i++ {
			s.Candidates.FindIn(blob)
		}
	})
	b.Run("naive", func(b *testing.B) {
		tokens := s.Candidates.Tokens()
		b.SetBytes(int64(len(blob)))
		for i := 0; i < b.N; i++ {
			for j := range tokens {
				_ = strings.Contains(string(blob), tokens[j].Value)
			}
		}
	})
}

func BenchmarkA3_DecodeVsCandidates(b *testing.B) {
	s := study(b)
	hashOnly := pii.MustBuildCandidates(s.Eco.Persona, pii.CandidateConfig{
		MaxDepth:   1,
		Transforms: []string{"md5", "sha1", "sha256"},
	})
	det := core.NewDetector(hashOnly, s.Detector.CNAME)
	succ := s.Dataset.Successes()
	b.Run("candidate-set", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			c := succ[i%len(succ)]
			s.Detector.DetectSite(c.Domain, c.Records)
		}
	})
	b.Run("decode-based", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			c := succ[i%len(succ)]
			for j := range c.Records {
				det.DecodeDetect(c.Domain, &c.Records[j], 2)
			}
		}
	})
}

// BenchmarkPipeline compares the batch crawl-then-detect path against
// the streaming pipeline at 1, 4 and 8 workers over the paper-scale
// ecosystem. The streamed variants also report the capture high-water
// mark — the pipeline's peak-memory bound in sites.
func BenchmarkPipeline(b *testing.B) {
	s := study(b)
	eco, profile, det := s.Eco, s.Config.Browser, s.Detector

	b.Run("batch", func(b *testing.B) {
		var leaks int
		for i := 0; i < b.N; i++ {
			ds := crawler.Crawl(eco, profile)
			var all []core.Leak
			for _, c := range ds.Successes() {
				all = append(all, det.DetectSite(c.Domain, c.Records)...)
			}
			leaks = len(all)
		}
		b.ReportMetric(float64(leaks), "leaks")
	})

	for _, w := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("streamed-%dw", w), func(b *testing.B) {
			var res *pipeline.Result
			for i := 0; i < b.N; i++ {
				var err error
				res, err = pipeline.Run(context.Background(), eco, profile, det, pipeline.Options{
					Options: crawler.Options{Workers: w}, DetectWorkers: w,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(len(res.Leaks)), "leaks")
			b.ReportMetric(float64(res.Stats.CaptureHighWater), "capture_high_water")
		})
	}
}

// BenchmarkObsOverhead measures the observability layer's cost on the
// paper-scale fused pipeline: the nil-observer run (every instrument
// call is a nil-receiver early return — the default every study pays)
// against the same run with a live observer collecting counters,
// histograms and per-site spans. The nil arm is the one the ≤2%
// overhead budget applies to.
func BenchmarkObsOverhead(b *testing.B) {
	s := study(b)
	eco, profile, det := s.Eco, s.Config.Browser, s.Detector
	for _, tc := range []struct {
		name string
		obs  func() *obs.Run
	}{
		{"off", func() *obs.Run { return nil }},
		{"on", func() *obs.Run { return obs.NewRun(nil) }},
	} {
		b.Run(tc.name, func(b *testing.B) {
			var res *pipeline.Result
			for i := 0; i < b.N; i++ {
				var err error
				res, err = pipeline.Run(context.Background(), eco, profile, det, pipeline.Options{
					Options: crawler.Options{Workers: 4, Obs: tc.obs()}, DetectWorkers: 4,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(len(res.Leaks)), "leaks")
		})
	}
}

// BenchmarkWatchdog measures the crash-only runtime's overhead on the
// fault-free paper-scale crawl: the stock resilient path against the
// same crawl under a per-site watchdog budget, whose deadline check
// rides on every fetch. The budget never trips fault-free (the virtual
// clock only advances under injected faults), so the delta is pure
// bookkeeping cost.
func BenchmarkWatchdog(b *testing.B) {
	s := study(b)
	eco, profile := s.Eco, s.Config.Browser
	for _, tc := range []struct {
		name string
		opts crawler.Options
	}{
		{"off", crawler.Options{}},
		{"on", crawler.Options{SiteTimeout: time.Minute}},
	} {
		b.Run(tc.name, func(b *testing.B) {
			var records int
			for i := 0; i < b.N; i++ {
				ds, err := crawler.CrawlOpts(context.Background(), eco, profile, tc.opts)
				if err != nil {
					b.Fatal(err)
				}
				records = ds.TotalRecords()
			}
			b.ReportMetric(float64(records), "records")
		})
	}
}

// BenchmarkFullStudy measures the complete pipeline: ecosystem
// generation, crawl, detection and analysis at paper scale.
func BenchmarkFullStudy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s, err := NewStudy(Config{
			Ecosystem:      webgen.DefaultConfig(),
			CandidateDepth: 2,
			Browser:        browser.Firefox88(),
		})
		if err != nil {
			b.Fatal(err)
		}
		if err := s.Run(context.Background()); err != nil {
			b.Fatal(err)
		}
	}
}
